package kvm

import (
	"strings"
	"testing"
	"testing/quick"

	"rio/internal/mem"
	"rio/internal/mmu"
)

// testEnv builds a VM with a small mapped memory: pages 0-3 virtual,
// writable; stack at the top of page 3.
func testEnv(t *testing.T, text *Text) *VM {
	t.Helper()
	m := mem.New(8 * mem.PageSize)
	u := mmu.New(m)
	for p := 0; p < 4; p++ {
		u.Map(uint64(p), p, true)
	}
	v := New(text, u)
	v.SetStack(4*mem.PageSize, 3*mem.PageSize)
	return v
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Instr{Op: Op(op), Rd: rd % NumRegs, Rs1: rs1 % NumRegs,
			Rs2: rs2 % NumRegs, Imm: imm}
		return Decode(in.Encode()) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMasksRegisters(t *testing.T) {
	in := Instr{Op: OpMov, Rd: 3, Rs1: 5}
	w := in.Encode() | 0xf0<<8 // garbage in high rd bits
	got := Decode(w)
	if got.Rd >= NumRegs {
		t.Fatalf("decoded rd %d out of range", got.Rd)
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpBeq.IsBranch() || !OpBgt.IsBranch() || OpJmp.IsBranch() {
		t.Fatal("IsBranch wrong")
	}
	if !OpLd.IsMemAccess() || !OpStB.IsMemAccess() || OpMov.IsMemAccess() {
		t.Fatal("IsMemAccess wrong")
	}
	if Op(200).Valid() {
		t.Fatal("op 200 should be invalid")
	}
	if !OpHalt.Valid() {
		t.Fatal("halt should be valid")
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []Instr{
		{Op: OpMovI, Rd: 1, Imm: 42},
		{Op: OpLd, Rd: 2, Rs1: 3, Imm: -8},
		{Op: OpSt, Rs1: 4, Rs2: 5, Imm: 16},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -3},
		{Op: OpAssert, Rs1: 1, Rs2: 2},
		{Op: Op(99)},
	}
	for _, in := range cases {
		if in.String() == "" {
			t.Errorf("empty String for %v", in.Op)
		}
	}
	if !strings.Contains((Instr{Op: Op(99)}).String(), "illegal") {
		t.Fatal("illegal op should say so")
	}
}

func TestArithmeticProgram(t *testing.T) {
	a := NewAsm()
	a.Proc("calc")
	// r0 = (r1 + r2) * 2 - r3, via shifts.
	a.Add(4, 1, 2)
	a.ShlI(4, 4, 1)
	a.Sub(0, 4, 3)
	a.Ret()
	text := a.MustAssemble()

	v := testEnv(t, text)
	if exc := v.Exec("calc", 10, 5, 7); exc != nil {
		t.Fatalf("exec: %v", exc)
	}
	if v.Reg[0] != 23 {
		t.Fatalf("r0 = %d, want 23", v.Reg[0])
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..n.
	a := NewAsm()
	a.Proc("sum")
	a.MovI(0, 0) // acc
	a.MovI(2, 0) // i
	a.EndProlog()
	loop := a.Here()
	a.BgtL(2, 1, "done") // if i > n goto done... (i starts 0, so add then inc)
	a.Add(0, 0, 2)
	a.AddI(2, 2, 1)
	a.Beq(3, 3, loop) // unconditional via always-equal
	a.Label("done")
	a.Ret()
	text := a.MustAssemble()

	v := testEnv(t, text)
	if exc := v.Exec("sum", 10); exc != nil {
		t.Fatalf("exec: %v", exc)
	}
	if v.Reg[0] != 55 {
		t.Fatalf("sum(10) = %d, want 55", v.Reg[0])
	}
}

func TestMemoryOps(t *testing.T) {
	a := NewAsm()
	a.Proc("store8")
	a.St(1, 0, 2) // [r1] = r2
	a.Ld(3, 1, 0) // r3 = [r1]
	a.Mov(0, 3)
	a.Ret()
	text := a.MustAssemble()

	v := testEnv(t, text)
	if exc := v.Exec("store8", 128, 0xfeedface); exc != nil {
		t.Fatalf("exec: %v", exc)
	}
	if v.Reg[0] != 0xfeedface {
		t.Fatalf("r0 = %#x", v.Reg[0])
	}
	if got := v.MMU.Mem.Word64(128); got != 0xfeedface {
		t.Fatalf("mem = %#x", got)
	}
}

func TestByteOps(t *testing.T) {
	a := NewAsm()
	a.Proc("bytes")
	a.StB(1, 0, 2)
	a.LdB(0, 1, 0)
	a.Ret()
	text := a.MustAssemble()
	v := testEnv(t, text)
	if exc := v.Exec("bytes", 77, 0x1ff); exc != nil { // byte-truncated store
		t.Fatalf("exec: %v", exc)
	}
	if v.Reg[0] != 0xff {
		t.Fatalf("r0 = %#x, want 0xff", v.Reg[0])
	}
}

func TestCallAndStack(t *testing.T) {
	a := NewAsm()
	a.Proc("double")
	a.Add(0, 1, 1)
	a.Ret()
	a.Proc("main")
	a.MovI(1, 21)
	a.Call("double")
	a.Ret()
	text := a.MustAssemble()

	v := testEnv(t, text)
	if exc := v.Exec("main"); exc != nil {
		t.Fatalf("exec: %v", exc)
	}
	if v.Reg[0] != 42 {
		t.Fatalf("r0 = %d", v.Reg[0])
	}
}

func TestPushPop(t *testing.T) {
	a := NewAsm()
	a.Proc("swap")
	a.Push(1)
	a.Push(2)
	a.Pop(1)
	a.Pop(2)
	a.Sub(0, 1, 2) // r0 = r2old - r1old after swap
	a.Ret()
	text := a.MustAssemble()
	v := testEnv(t, text)
	if exc := v.Exec("swap", 3, 10); exc != nil {
		t.Fatalf("exec: %v", exc)
	}
	if int64(v.Reg[0]) != 7 {
		t.Fatalf("r0 = %d, want 7", int64(v.Reg[0]))
	}
}

func TestAssertPass(t *testing.T) {
	a := NewAsm()
	a.Proc("ok")
	a.MovI(1, 5)
	a.MovI(2, 5)
	a.Assert(1, 2)
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	if exc := v.Exec("ok"); exc != nil {
		t.Fatalf("assert should pass: %v", exc)
	}
}

func TestAssertFail(t *testing.T) {
	a := NewAsm()
	a.Proc("bad")
	a.MovI(1, 5)
	a.MovI(2, 6)
	a.Assert(1, 2)
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	exc := v.Exec("bad")
	if exc == nil || exc.Kind != ExcAssert {
		t.Fatalf("exc = %v", exc)
	}
	if !strings.Contains(exc.Error(), "consistency") {
		t.Fatalf("error text: %v", exc)
	}
}

func TestWildStoreTraps(t *testing.T) {
	a := NewAsm()
	a.Proc("wild")
	a.MovI(1, 0)
	a.MovHi(1, 0x7fff) // enormous unmapped virtual address
	a.St(1, 0, 2)
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	exc := v.Exec("wild")
	if exc == nil || exc.Kind != ExcTrap {
		t.Fatalf("exc = %v", exc)
	}
	if exc.Trap == nil || exc.Trap.Kind != mmu.TrapIllegalAddress {
		t.Fatalf("trap = %v", exc.Trap)
	}
}

func TestProtectedStoreTraps(t *testing.T) {
	a := NewAsm()
	a.Proc("stomp")
	a.St(1, 0, 2)
	a.Ret()
	text := a.MustAssemble()
	v := testEnv(t, text)
	v.MMU.EnforceProtection = true
	v.MMU.MapAllThroughTLB = true
	v.MMU.SetFrameProtection(1, true)
	exc := v.Exec("stomp", uint64(mem.PageSize+64), 1)
	if exc == nil || exc.Kind != ExcTrap || exc.Trap.Kind != mmu.TrapProtection {
		t.Fatalf("exc = %v", exc)
	}
}

func TestKSEGStoreThroughVM(t *testing.T) {
	a := NewAsm()
	a.Proc("kseg")
	a.St(1, 0, 2)
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	addr := mmu.PhysToKSEG(uint64(5 * mem.PageSize)) // beyond mapped virt, fine for KSEG
	if exc := v.Exec("kseg", addr, 0xabc); exc != nil {
		t.Fatalf("exec: %v", exc)
	}
	if v.MMU.Mem.Word64(uint64(5*mem.PageSize)) != 0xabc {
		t.Fatal("KSEG store missed")
	}
}

func TestInfiniteLoopBudget(t *testing.T) {
	a := NewAsm()
	a.Proc("spin")
	l := a.Here()
	a.Beq(0, 0, l)
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	v.Budget = 10_000
	exc := v.Exec("spin")
	if exc == nil || exc.Kind != ExcBudget {
		t.Fatalf("exc = %v", exc)
	}
}

func TestIllegalOpcodeTraps(t *testing.T) {
	a := NewAsm()
	a.Proc("p")
	a.Nop()
	a.Ret()
	text := a.MustAssemble()
	text.SetWord(0, uint64(200)) // invalid opcode
	v := testEnv(t, text)
	exc := v.Exec("p")
	if exc == nil || exc.Kind != ExcIllegalInstr {
		t.Fatalf("exc = %v", exc)
	}
}

func TestCorruptedReturnAddress(t *testing.T) {
	// A procedure that scribbles on its own return address: RET then jumps
	// to a wild PC, which must be caught as an illegal instruction fetch.
	a := NewAsm()
	a.Proc("smash")
	a.MovI(2, 0x3f00)
	a.St(15, 0, 2) // overwrite return address at [sp]
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	exc := v.Exec("smash")
	if exc == nil || exc.Kind != ExcIllegalInstr {
		t.Fatalf("exc = %v", exc)
	}
}

func TestStackOverflow(t *testing.T) {
	a := NewAsm()
	a.Proc("recurse")
	a.Call("recurse")
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	exc := v.Exec("recurse")
	if exc == nil || exc.Kind != ExcStackOverflow {
		t.Fatalf("exc = %v", exc)
	}
}

func TestStaleRegistersSurviveExec(t *testing.T) {
	a := NewAsm()
	a.Proc("set")
	a.MovI(9, 1234)
	a.Ret()
	a.Proc("read")
	a.Mov(0, 9) // uses r9 without initialising it
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	if exc := v.Exec("set"); exc != nil {
		t.Fatal(exc)
	}
	if exc := v.Exec("read"); exc != nil {
		t.Fatal(exc)
	}
	if v.Reg[0] != 1234 {
		t.Fatalf("stale register lost: r0 = %d", v.Reg[0])
	}
}

type testIntr struct {
	calls []int32
	fail  bool
}

func (ti *testIntr) Intrinsic(v *VM, num int32) *Exception {
	ti.calls = append(ti.calls, num)
	if ti.fail {
		return &Exception{Kind: ExcIntrinsic, PC: v.PC(), Reason: "test"}
	}
	v.Reg[0] = v.Reg[1] * 2
	return nil
}

func TestIntrinsicCall(t *testing.T) {
	a := NewAsm()
	a.Proc("p")
	a.MovI(1, 30)
	a.Intr(7)
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	ti := &testIntr{}
	v.Intr = ti
	if exc := v.Exec("p"); exc != nil {
		t.Fatal(exc)
	}
	if v.Reg[0] != 60 {
		t.Fatalf("r0 = %d", v.Reg[0])
	}
	if len(ti.calls) != 1 || ti.calls[0] != 7 {
		t.Fatalf("calls = %v", ti.calls)
	}
}

func TestIntrinsicPanic(t *testing.T) {
	a := NewAsm()
	a.Proc("p")
	a.Intr(1)
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	v.Intr = &testIntr{fail: true}
	exc := v.Exec("p")
	if exc == nil || exc.Kind != ExcIntrinsic {
		t.Fatalf("exc = %v", exc)
	}
}

func TestIntrinsicWithoutHandler(t *testing.T) {
	a := NewAsm()
	a.Proc("p")
	a.Intr(1)
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	exc := v.Exec("p")
	if exc == nil || exc.Kind != ExcIllegalInstr {
		t.Fatalf("exc = %v", exc)
	}
}

func TestEntryHooks(t *testing.T) {
	a := NewAsm()
	a.Proc("leaf")
	a.Mov(0, 1)
	a.Ret()
	a.Proc("main")
	a.MovI(1, 5)
	a.Call("leaf")
	a.Ret()
	text := a.MustAssemble()
	v := testEnv(t, text)
	leaf := text.MustProc("leaf")
	v.EntryHooks[leaf.Entry] = func(vm *VM) { vm.Reg[1] = 99 }
	if exc := v.Exec("main"); exc != nil {
		t.Fatal(exc)
	}
	if v.Reg[0] != 99 {
		t.Fatalf("hook did not fire: r0 = %d", v.Reg[0])
	}
}

func TestTextCloneIsolation(t *testing.T) {
	a := NewAsm()
	a.Proc("p")
	a.MovI(0, 1)
	a.Ret()
	text := a.MustAssemble()
	cl := text.Clone()
	cl.FlipBit(0, 0)
	if text.Word(0) == cl.Word(0) {
		t.Fatal("Clone shares words")
	}
}

func TestTextProcLookup(t *testing.T) {
	a := NewAsm()
	a.Proc("alpha")
	a.Nop()
	a.Ret()
	a.Proc("beta")
	a.MovI(1, 1)
	a.EndProlog()
	a.Nop()
	a.Ret()
	text := a.MustAssemble()

	p := text.MustProc("beta")
	if p.Prolog != 1 {
		t.Fatalf("beta prolog = %d, want 1", p.Prolog)
	}
	if p.Len() != 3 {
		t.Fatalf("beta len = %d", p.Len())
	}
	if _, ok := text.Proc("gamma"); ok {
		t.Fatal("phantom proc")
	}
	got, ok := text.ProcAt(p.Entry + 1)
	if !ok || got.Name != "beta" {
		t.Fatalf("ProcAt = %v, %v", got, ok)
	}
	if len(text.Procs()) != 2 {
		t.Fatal("Procs count")
	}
}

func TestDisassemble(t *testing.T) {
	a := NewAsm()
	a.Proc("p")
	a.MovI(1, 7)
	a.Ret()
	text := a.MustAssemble()
	d := text.Disassemble(-5, 100)
	if !strings.Contains(d, "p:") || !strings.Contains(d, "movi r1, 7") {
		t.Fatalf("disassembly:\n%s", d)
	}
}

func TestAsmErrors(t *testing.T) {
	a := NewAsm()
	a.Nop() // outside procedure
	if _, err := a.Assemble(); err == nil {
		t.Fatal("expected error for emission outside procedure")
	}

	b := NewAsm()
	b.Proc("p")
	b.JmpL("nowhere")
	if _, err := b.Assemble(); err == nil {
		t.Fatal("expected error for undefined label")
	}

	c := NewAsm()
	c.Proc("p")
	c.Label("x")
	c.Label("x")
	c.Ret()
	if _, err := c.Assemble(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestForwardAndBackwardLabels(t *testing.T) {
	// Count down from r1 to zero using a forward exit branch and a
	// backward jump.
	a := NewAsm()
	a.Proc("count")
	a.MovI(0, 0)
	a.MovI(2, 0)
	a.EndProlog()
	loop := a.Here()
	a.BeqL(1, 2, "out")
	a.AddI(1, 1, -1)
	a.AddI(0, 0, 1)
	a.Jmp(loop)
	a.Label("out")
	a.Ret()
	text := a.MustAssemble()
	v := testEnv(t, text)
	if exc := v.Exec("count", 17); exc != nil {
		t.Fatal(exc)
	}
	if v.Reg[0] != 17 {
		t.Fatalf("count = %d", v.Reg[0])
	}
}

func TestStepsAccounting(t *testing.T) {
	a := NewAsm()
	a.Proc("p")
	a.Nop()
	a.Nop()
	a.Ret()
	v := testEnv(t, a.MustAssemble())
	v.Exec("p")
	if v.Steps != 3 {
		t.Fatalf("steps = %d, want 3", v.Steps)
	}
}
