// Package cache implements the two file caches of the simulated Digital
// Unix kernel:
//
//   - the traditional buffer cache, holding metadata blocks (superblock,
//     inodes, bitmap, directories) in wired virtual memory, and
//   - the Unified Buffer Cache (UBC), holding regular-file data pages and
//     addressed through KSEG physical addresses — which is why Rio has to
//     force KSEG through the TLB to protect the bulk of the file cache.
//
// Every mutation of a cached buffer flows through the kernel's sanctioned
// write path (write_block in kernel text) with Rio's discipline layered
// around it: mark the registry entry "changing", open the frame's write
// permission, copy, recompute the checksum, close the permission, clear
// "changing". A wild store that bypasses this path either traps (protection
// on) or leaves a checksum mismatch behind (protection off) — the two
// outcomes Table 1 measures.
package cache

import (
	"container/list"
	"fmt"
	"sort"

	"rio/internal/kernel"
	"rio/internal/mem"
	"rio/internal/mmu"
	"rio/internal/registry"
)

// BlockSize is the file-system block size: one page, as on the paper's
// Alphas.
const BlockSize = mem.PageSize

// Kind distinguishes the two caches.
type Kind int

const (
	// Meta is the traditional buffer cache (virtual addresses).
	Meta Kind = iota
	// Data is the UBC (KSEG physical addresses).
	Data
)

func (k Kind) String() string {
	if k == Meta {
		return "meta"
	}
	return "data"
}

// DataKey identifies a UBC page.
type DataKey struct {
	Ino       uint32
	FileBlock int64
}

// Buf is a cached block.
type Buf struct {
	Kind      Kind
	Block     int64  // disk block number (meta always; data once allocated)
	Ino       uint32 // owning inode (data)
	FileBlock int64  // block index within the file (data)
	Frame     int    // physical frame
	Addr      uint64 // kernel address: virtual (meta) or KSEG (data)
	Hdr       uint64 // persistent buffer header in the kernel heap
	Lock      kernel.LockID
	Slot      int // registry slot
	Dirty     bool
	Size      int // valid bytes (≤ BlockSize)
	// Gen counts content updates; write-back completion callbacks use it
	// to avoid marking a since-redirtied buffer clean.
	Gen uint64

	elem *list.Element
}

// Off returns the byte offset of a data buffer within its file.
func (b *Buf) Off() int64 { return b.FileBlock * BlockSize }

// Stats counts cache activity.
type Stats struct {
	MetaHits, MetaMisses uint64
	DataHits, DataMisses uint64
	Evictions            uint64
	WriteBacks           uint64
	ShadowWrites         uint64
}

// Cache manages both pools.
type Cache struct {
	K   *kernel.Kernel
	Reg *registry.Registry

	// Protect toggles Rio's frame write protection around sanctioned
	// writes (and keeps idle buffers protected).
	Protect bool

	// Checksums maintains per-buffer content checksums in the registry.
	// Crash campaigns turn this on (it is how direct corruption is
	// detected); performance runs may turn it off.
	Checksums bool

	// MetaCap and DataCap bound the pools in pages; inserting beyond a
	// cap evicts (writing back dirty victims through WriteBack).
	MetaCap, DataCap int

	// WriteBack is the file system's callback for flushing one dirty
	// buffer to disk; it must leave the buffer clean (call MarkClean).
	WriteBack func(*Buf) error

	Stats Stats

	meta    map[int64]*Buf
	data    map[DataKey]*Buf
	metaLRU *list.List // front = most recent
	dataLRU *list.List
	pageBuf []byte // reusable insert staging page (see insert)
}

// New returns an empty cache over k and reg.
func New(k *kernel.Kernel, reg *registry.Registry, metaCap, dataCap int) *Cache {
	if metaCap <= 0 || dataCap <= 0 {
		panic("cache: non-positive capacity")
	}
	return &Cache{
		K: k, Reg: reg,
		MetaCap: metaCap, DataCap: dataCap,
		meta:    make(map[int64]*Buf),
		data:    make(map[DataKey]*Buf),
		metaLRU: list.New(),
		dataLRU: list.New(),
	}
}

// LookupMeta returns the cached buffer for a disk block, if present.
func (c *Cache) LookupMeta(block int64) *Buf {
	b := c.meta[block]
	if b != nil {
		c.Stats.MetaHits++
		c.touch(b)
	} else {
		c.Stats.MetaMisses++
	}
	return b
}

// LookupData returns the cached UBC page for (ino, fileBlock), if present.
func (c *Cache) LookupData(ino uint32, fileBlock int64) *Buf {
	b := c.data[DataKey{ino, fileBlock}]
	if b != nil {
		c.Stats.DataHits++
		c.touch(b)
	} else {
		c.Stats.DataMisses++
	}
	return b
}

func (c *Cache) touch(b *Buf) {
	lru := c.lruOf(b.Kind)
	lru.MoveToFront(b.elem)
}

func (c *Cache) lruOf(k Kind) *list.List {
	if k == Meta {
		return c.metaLRU
	}
	return c.dataLRU
}

func (c *Cache) capOf(k Kind) int {
	if k == Meta {
		return c.MetaCap
	}
	return c.DataCap
}

// Len returns the number of buffers in a pool.
func (c *Cache) Len(k Kind) int { return c.lruOf(k).Len() }

// evictFor makes room in the pool for one more buffer.
func (c *Cache) evictFor(k Kind) error {
	lru := c.lruOf(k)
	for lru.Len() >= c.capOf(k) {
		victimElem := lru.Back()
		if victimElem == nil {
			return fmt.Errorf("cache: %s pool empty but over cap", k)
		}
		victim := victimElem.Value.(*Buf)
		if victim.Dirty {
			if c.WriteBack == nil {
				return fmt.Errorf("cache: dirty eviction with no WriteBack")
			}
			if err := c.WriteBack(victim); err != nil {
				return err
			}
		}
		c.Stats.Evictions++
		if err := c.Remove(victim); err != nil {
			return err
		}
	}
	return nil
}

// insert builds a Buf around a fresh frame containing content (or zeroes).
func (c *Cache) insert(kind Kind, content []byte, size int) (*Buf, error) {
	if err := c.evictFor(kind); err != nil {
		return nil, err
	}
	class := kernel.FrameMeta
	if kind == Data {
		class = kernel.FrameUBC
	}
	frame := c.K.AllocFrame(class)
	if frame < 0 {
		return nil, fmt.Errorf("cache: out of physical frames")
	}
	// DMA-style initial fill: raw write, as a disk controller would. The
	// staging page is reused across inserts; its tail must be re-zeroed
	// because content may be shorter than a block (or nil for a fresh
	// zero page).
	if c.pageBuf == nil {
		c.pageBuf = make([]byte, BlockSize)
	}
	n := copy(c.pageBuf, content)
	clear(c.pageBuf[n:])
	c.K.Mem.WriteAt(mem.FrameBase(frame), c.pageBuf)
	c.K.Mem.Frame(frame).FileCache = true

	var addr uint64
	if kind == Meta {
		addr = c.K.MapDyn(frame, true)
	} else {
		addr = mmu.PhysToKSEG(mem.FrameBase(frame))
	}
	lock := c.K.NewLockID()
	hdr, err := c.K.NewBufHdr(addr, lock)
	if err != nil {
		return nil, err
	}
	b := &Buf{
		Kind: kind, Frame: frame, Addr: addr, Hdr: hdr, Lock: lock,
		Size: size, Block: -1,
	}
	if c.Protect {
		c.K.MMU.SetFrameProtection(frame, true)
	}
	return b, nil
}

func (c *Cache) cksum(b *Buf) (uint64, error) {
	if !c.Checksums {
		return 0, nil
	}
	return c.K.CksumTrusted(b.Addr, BlockSize)
}

// InsertMeta caches a metadata block with the given initial content.
func (c *Cache) InsertMeta(block int64, content []byte) (*Buf, error) {
	if old := c.meta[block]; old != nil {
		return nil, fmt.Errorf("cache: meta block %d already cached", block)
	}
	b, err := c.insert(Meta, content, BlockSize)
	if err != nil {
		return nil, err
	}
	b.Block = block
	ck, err := c.cksum(b)
	if err != nil {
		return nil, err
	}
	slot, err := c.Reg.Alloc(registry.Entry{
		Kind: registry.KindMeta, Frame: uint32(b.Frame),
		Size: uint32(b.Size), Block: block, Cksum: ck,
	})
	if err != nil {
		return nil, err
	}
	b.Slot = slot
	c.meta[block] = b
	b.elem = c.metaLRU.PushFront(b)
	return b, nil
}

// InsertData caches a UBC page for (ino, fileBlock) stored at diskBlock
// (-1 if no disk block assigned yet) with the given content and valid size.
func (c *Cache) InsertData(ino uint32, fileBlock int64, diskBlock int64, content []byte, size int) (*Buf, error) {
	key := DataKey{ino, fileBlock}
	if old := c.data[key]; old != nil {
		return nil, fmt.Errorf("cache: data page %v already cached", key)
	}
	b, err := c.insert(Data, content, size)
	if err != nil {
		return nil, err
	}
	b.Ino = ino
	b.FileBlock = fileBlock
	b.Block = diskBlock
	ck, err := c.cksum(b)
	if err != nil {
		return nil, err
	}
	slot, err := c.Reg.Alloc(registry.Entry{
		Kind: registry.KindData, Frame: uint32(b.Frame), Ino: ino,
		Size: uint32(size), Block: diskBlock, Off: b.Off(), Cksum: ck,
	})
	if err != nil {
		return nil, err
	}
	b.Slot = slot
	c.data[key] = b
	b.elem = c.dataLRU.PushFront(b)
	return b, nil
}

// Write copies data into the buffer at off through the sanctioned kernel
// path, with the full Rio discipline. validSize is the buffer's valid length
// after the write (for data pages, min(BlockSize, fileSize-pageOff)).
func (c *Cache) Write(b *Buf, off int, data []byte, validSize int) error {
	if off < 0 || off+len(data) > BlockSize || validSize > BlockSize {
		panic(fmt.Sprintf("cache: bad write [%d,+%d) valid=%d", off, len(data), validSize))
	}
	// 1. Mark changing + dirty in the registry. If we crash mid-copy the
	// flag tells warm reboot this buffer cannot be classified by checksum.
	err := c.Reg.Mutate(b.Slot, func(e *registry.Entry) {
		e.Flags |= registry.FlagChanging | registry.FlagDirty
		e.Size = uint32(validSize)
	})
	if err != nil {
		return err
	}
	// 2. Stage and copy through write_block.
	src := c.K.StageIn(data)
	if err := c.K.SetBufHdrOp(b.Hdr, len(data), src, off); err != nil {
		return err
	}
	if c.Protect {
		c.K.MMU.SetFrameProtection(b.Frame, false)
	}
	werr := c.K.WriteBlock(b.Hdr)
	if c.Protect && c.K.Crashed() == nil {
		c.K.MMU.SetFrameProtection(b.Frame, true)
	}
	if werr != nil {
		return werr
	}
	// 3. New checksum; clear changing.
	ck, err := c.cksum(b)
	if err != nil {
		return err
	}
	err = c.Reg.Mutate(b.Slot, func(e *registry.Entry) {
		e.Flags &^= registry.FlagChanging
		e.Cksum = ck
	})
	if err != nil {
		return err
	}
	b.Dirty = true
	b.Gen++
	b.Size = validSize
	c.touch(b)
	return nil
}

// WriteShadow atomically replaces a metadata buffer's full contents using
// Rio's shadow-page protocol (§2.3): the registry is pointed at a shadow
// copy of the old contents while the original is rewritten, so a crash at
// any instant leaves a complete old or complete new block for warm reboot.
func (c *Cache) WriteShadow(b *Buf, data []byte) error {
	if len(data) != BlockSize {
		panic("cache: WriteShadow requires a full block")
	}
	if b.Kind != Meta {
		panic("cache: WriteShadow is for metadata buffers")
	}
	shadow := c.K.AllocFrame(kernel.FrameMeta)
	if shadow < 0 {
		// Degrade to a plain (non-atomic) write rather than fail.
		return c.Write(b, 0, data, BlockSize)
	}
	c.Stats.ShadowWrites++
	shadowAddr := mmu.PhysToKSEG(mem.FrameBase(shadow))
	// Copy old contents to the shadow.
	if err := c.K.BCopy(shadowAddr, b.Addr, BlockSize); err != nil {
		return err
	}
	c.K.Mem.Frame(shadow).FileCache = true
	if c.Protect {
		c.K.MMU.SetFrameProtection(shadow, true)
	}
	// Point the registry at the shadow (old, consistent contents).
	if err := c.Reg.Mutate(b.Slot, func(e *registry.Entry) {
		e.Frame = uint32(shadow)
	}); err != nil {
		return err
	}
	// Rewrite the original through the sanctioned path. No changing flag:
	// the registry references the stable shadow throughout.
	src := c.K.StageIn(data)
	if err := c.K.SetBufHdrOp(b.Hdr, BlockSize, src, 0); err != nil {
		return err
	}
	if c.Protect {
		c.K.MMU.SetFrameProtection(b.Frame, false)
	}
	werr := c.K.WriteBlock(b.Hdr)
	if c.Protect && c.K.Crashed() == nil {
		c.K.MMU.SetFrameProtection(b.Frame, true)
	}
	if werr != nil {
		return werr
	}
	ck, err := c.cksum(b)
	if err != nil {
		return err
	}
	// Atomically point the registry back at the rewritten original.
	if err := c.Reg.Mutate(b.Slot, func(e *registry.Entry) {
		e.Frame = uint32(b.Frame)
		e.Cksum = ck
		e.Flags |= registry.FlagDirty
	}); err != nil {
		return err
	}
	c.K.FreeFrame(shadow)
	b.Dirty = true
	b.Gen++
	c.touch(b)
	return nil
}

// Read copies n bytes at off out of the buffer through the sanctioned read
// path and returns them.
func (c *Cache) Read(b *Buf, off, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := c.ReadInto(b, off, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadInto is Read into a caller-supplied buffer (len(dst) bytes from
// off), sparing the hot read path one allocation and one copy per block.
func (c *Cache) ReadInto(b *Buf, off int, dst []byte) error {
	n := len(dst)
	if off < 0 || off+n > BlockSize {
		panic(fmt.Sprintf("cache: bad read [%d,+%d)", off, n))
	}
	if err := c.K.SetBufHdrOp(b.Hdr, n, kernel.StagingBase, off); err != nil {
		return err
	}
	if err := c.K.ReadBlock(b.Hdr); err != nil {
		return err
	}
	c.touch(b)
	c.K.StageOutInto(dst)
	return nil
}

// ReadDirect copies len(dst) bytes at off out of the buffer's cache frame
// straight into dst — the zero-staging serving path. Unlike ReadInto it
// skips the kernel's staging bounce (one copy instead of two), the way a
// NIC would DMA out of the protected frame; unlike ContentsAt it is a
// real cache read: it refuses to serve from a crashed kernel, keeps LRU
// parity with the staged path, and charges the simulator for the copy.
func (c *Cache) ReadDirect(b *Buf, off int, dst []byte) error {
	if off < 0 || off+len(dst) > BlockSize {
		panic(fmt.Sprintf("cache: bad direct read [%d,+%d)", off, len(dst)))
	}
	if cr := c.K.Crashed(); cr != nil {
		return cr
	}
	c.K.Mem.ReadAt(mem.FrameBase(b.Frame)+uint64(off), dst)
	c.K.ChargeCopy(len(dst))
	c.touch(b)
	return nil
}

// Contents returns the raw page contents (trusted oracle/flush path: reads
// physical memory directly, like a DMA engine would on write-back).
func (c *Cache) Contents(b *Buf) []byte {
	return c.K.Mem.Page(b.Frame)
}

// ContentsAt copies len(dst) bytes at off out of the buffer's frame —
// the same trusted direct read as Contents, without paying a full-page
// copy when the caller wants a few fields (e.g. one inode).
func (c *Cache) ContentsAt(b *Buf, off int, dst []byte) {
	if off < 0 || off+len(dst) > BlockSize {
		panic(fmt.Sprintf("cache: bad contents read [%d,+%d)", off, len(dst)))
	}
	c.K.Mem.ReadAt(mem.FrameBase(b.Frame)+uint64(off), dst)
}

// MarkClean records that the buffer matches its disk copy again.
func (c *Cache) MarkClean(b *Buf) error {
	b.Dirty = false
	return c.Reg.Mutate(b.Slot, func(e *registry.Entry) {
		e.Flags &^= registry.FlagDirty
	})
}

// SetDiskBlock updates the buffer's disk address (data block allocation).
func (c *Cache) SetDiskBlock(b *Buf, block int64) error {
	b.Block = block
	return c.Reg.Mutate(b.Slot, func(e *registry.Entry) {
		e.Block = block
	})
}

// Remove drops a buffer from the cache without writing it back. The caller
// is responsible for any required flush.
func (c *Cache) Remove(b *Buf) error {
	switch b.Kind {
	case Meta:
		delete(c.meta, b.Block)
	case Data:
		delete(c.data, DataKey{b.Ino, b.FileBlock})
	}
	c.lruOf(b.Kind).Remove(b.elem)
	if err := c.Reg.Free(b.Slot); err != nil {
		return err
	}
	c.K.FreeBufHdr(b.Hdr)
	if b.Kind == Meta {
		c.K.MMU.Unmap(b.Addr / mem.PageSize)
	}
	c.K.FreeFrame(b.Frame)
	return nil
}

// DropFileData removes all UBC pages of an inode (file deletion or
// truncation at/after fromBlock), without write-back. Victims are
// removed in file-block order, not map order: Remove pushes registry
// slots and frames onto free lists, so removal order decides what later
// allocations get — and with that, the order warm reboot restores pages
// and the order recovery I/O hits the disk's fault stream. Map-order
// removal made double-fault campaigns diverge between identical runs.
func (c *Cache) DropFileData(ino uint32, fromBlock int64) error {
	var victims []*Buf
	for key, b := range c.data {
		if key.Ino == ino && key.FileBlock >= fromBlock {
			victims = append(victims, b)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].FileBlock < victims[j].FileBlock })
	for _, b := range victims {
		if err := c.Remove(b); err != nil {
			return err
		}
	}
	return nil
}

// DirtyBufs returns the dirty buffers of a pool, least recently used first
// (a natural flush order).
func (c *Cache) DirtyBufs(kind Kind) []*Buf {
	var out []*Buf
	lru := c.lruOf(kind)
	for e := lru.Back(); e != nil; e = e.Prev() {
		b := e.Value.(*Buf)
		if b.Dirty {
			out = append(out, b)
		}
	}
	return out
}

// All returns every buffer in a pool (tests, verification).
func (c *Cache) All(kind Kind) []*Buf {
	var out []*Buf
	lru := c.lruOf(kind)
	for e := lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*Buf))
	}
	return out
}
