package workload

import (
	"math"
	"sort"

	"rio/internal/sim"
)

// KeyCDF is the shared key-popularity distribution: a cumulative
// distribution over n keys with power-law skew, weight(i) = 1/(i+1)^s.
// s = 0 is uniform; s = 1 is approximately zipfian. It is the one
// implementation behind rioload's -skew flag and the key-driven
// workloads (hotkey, the server scenario), so the two cannot drift:
// the same (n, skew, rng stream) picks the same key sequence
// everywhere. Sampling consumes exactly one draw from the caller's
// stream — callers seed those streams via sim.Mix, so key choice is a
// pure function of the stream's coordinates.
type KeyCDF []float64

// NewKeyCDF builds the distribution for n keys at the given skew
// exponent. n must be positive.
func NewKeyCDF(n int, skew float64) KeyCDF {
	if n <= 0 {
		panic("workload: NewKeyCDF with non-positive n")
	}
	cdf := make(KeyCDF, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), skew)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

// Pick samples one key index with a single uniform draw from rng.
// Index 0 is the most popular key.
func (c KeyCDF) Pick(rng *sim.Rand) int {
	i := sort.SearchFloat64s(c, rng.Float64())
	if i >= len(c) {
		i = len(c) - 1 // guard the float rounding edge at cdf[n-1]
	}
	return i
}
