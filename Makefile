# Tier-1 gate: `make check` runs the same commands CI should — build,
# vet, tests, and the race detector over the concurrent campaign
# scheduler (scripts/check.sh is the single source of truth).

.PHONY: check build lint test race bench crash-recovery

check:
	sh scripts/check.sh

build:
	go build ./...

# riolint: the repo's own static-analysis suite (internal/lint) — enforces
# the determinism and protection-discipline invariants the compiler can't
# see. Clean tree is a tier-1 gate; see DESIGN.md "Enforced invariants".
lint:
	go run ./cmd/riolint ./...

test:
	go test ./...

race:
	go test -race ./internal/crashtest/... ./internal/warmreboot/... ./internal/disk/...

bench:
	go test -run '^$$' -bench . -benchtime 1x .

# Double-fault campaign smoke test: a small fixed-seed campaign with
# storage faults and second crashes enabled, diffed against the golden
# report in testdata (the campaign: summary line carries wall time and
# is filtered). Regenerate the golden with `make crash-recovery-golden`
# after an intentional behaviour change.
crash-recovery:
	go run ./cmd/riocrash -runs 2 -seed 1996 -workers 4 -disk-faults -quiet 2>/dev/null \
		| grep -v '^campaign:' | diff -u testdata/crash-recovery.golden -
	@echo "crash-recovery: output matches golden"

crash-recovery-golden:
	mkdir -p testdata
	go run ./cmd/riocrash -runs 2 -seed 1996 -workers 4 -disk-faults -quiet 2>/dev/null \
		| grep -v '^campaign:' > testdata/crash-recovery.golden
