// Package server is riod's serving layer: a sharded concurrent front
// end over the single-threaded Rio simulation.
//
// The deterministic core (rio.System and everything below it) models
// one machine and must stay on one goroutine — that is what makes crash
// campaigns reproducible. This package gets concurrency the way a
// sharded storage service does: S independent rio.System instances,
// each owned by exactly one shard goroutine, with requests routed to a
// shard by path hash and queued on a bounded per-shard channel. The
// shard goroutine drains its queue in batches and runs each request
// against its System sequentially, so no simulation state is ever
// touched from two goroutines; all cross-goroutine traffic is requests
// and responses by value.
//
// Each shard plays the paper's role of one Rio machine: writes are
// durable the moment they are acknowledged, and an administratively
// crashed shard warm-reboots back to exactly the acknowledged state
// while its neighbours keep serving. While a shard is down, requests
// for it fail fast with wire.StatusAgain — the EAGAIN discipline —
// rather than queueing behind an outage.
package server

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rio"
	"rio/internal/wire"
)

// Config sizes a server. The zero value of any field picks the default.
type Config struct {
	// Shards is the number of independent rio.System instances
	// (default 4). Requests route to a shard by FNV-1a hash of Path.
	Shards int
	// QueueDepth bounds each shard's request queue (default 128). A
	// full queue answers wire.StatusAgain instead of blocking — load
	// shedding, not buffering, is the overload response.
	QueueDepth int
	// MaxBatch bounds how many queued requests one drain cycle hands
	// the shard goroutine (default 32).
	MaxBatch int
	// Policy, Seed, MemoryMB, DiskMB configure each shard's machine.
	// Shard i boots with seed sim.Mix(Seed, i) via rio.NewShards.
	Policy   rio.Policy
	Seed     uint64
	MemoryMB int
	DiskMB   int

	// testGate, when set, is called by a shard goroutine before each
	// drain cycle. Tests use it to stall a shard and observe queueing
	// behaviour deterministically.
	testGate func(shard int)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// task carries one request through a shard queue. The response channel
// is buffered so the shard goroutine never blocks on a reply.
type task struct {
	req  *wire.Request
	resp chan *wire.Response
	enq  time.Time
}

// shard owns one rio.System. Only the shard goroutine touches sys and
// down; mu guards the metrics fields read by Metrics().
type shard struct {
	id  int
	sys *rio.System
	ch  chan task

	mu        sync.Mutex
	down      bool
	ops       uint64
	errors    uint64
	retried   uint64
	rejected  uint64
	bytes     uint64
	batches   uint64
	batchSum  uint64
	maxBatch  int
	crashes   uint64
	warmboots uint64
	lat       Histogram
}

// Server routes requests to shards. Safe for concurrent use.
type Server struct {
	cfg    Config
	shards []*shard

	mu     sync.RWMutex // guards closed and the enqueue-vs-close race
	closed bool
	wg     sync.WaitGroup
}

// New boots cfg.Shards independent machines and starts their shard
// goroutines. Call Close to drain and stop.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	systems, err := rio.NewShards(cfg.Shards, rio.Config{
		Policy:   cfg.Policy,
		Seed:     cfg.Seed,
		MemoryMB: cfg.MemoryMB,
		DiskMB:   cfg.DiskMB,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg}
	s.shards = make([]*shard, cfg.Shards)
	for i, sys := range systems {
		sh := &shard{id: i, sys: sys, ch: make(chan task, cfg.QueueDepth)}
		s.shards[i] = sh
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sh.run(cfg)
		}()
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// ShardOf returns the shard a path routes to: FNV-1a 64 of the path,
// reduced mod the shard count. The hash is stable across processes and
// versions — campaign seeds and golden transcripts depend on routing
// never drifting.
func (s *Server) ShardOf(path string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

// Do submits one request and blocks until its response. It never
// returns nil. Overload and outages surface as typed statuses:
// wire.StatusAgain (retry with backoff) when the target shard's queue
// is full or the shard is down, wire.StatusClosed once the server is
// draining or stopped.
func (s *Server) Do(req *wire.Request) *wire.Response {
	sh, errResp := s.route(req)
	if errResp != nil {
		return errResp
	}
	t := task{req: req, resp: make(chan *wire.Response, 1), enq: time.Now()}

	// The read lock pins the closed flag across the enqueue so Close
	// cannot close a shard channel between our check and our send.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return &wire.Response{ID: req.ID, Status: wire.StatusClosed, Msg: "server closed"}
	}
	select {
	case sh.ch <- t:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		sh.mu.Lock()
		sh.rejected++
		sh.mu.Unlock()
		return &wire.Response{ID: req.ID, Status: wire.StatusAgain,
			Msg: fmt.Sprintf("shard %d queue full", sh.id)}
	}
	return <-t.resp
}

// route validates the request and picks its shard.
func (s *Server) route(req *wire.Request) (*shard, *wire.Response) {
	fail := func(msg string) (*shard, *wire.Response) {
		return nil, &wire.Response{ID: req.ID, Status: wire.StatusInvalid, Msg: msg}
	}
	if !req.Op.Valid() {
		return fail(fmt.Sprintf("unknown op %d", uint8(req.Op)))
	}
	switch req.Op {
	case wire.OpCrash, wire.OpWarmboot:
		if req.Shard < 0 || int(req.Shard) >= len(s.shards) {
			return fail(fmt.Sprintf("admin op %v: shard %d out of range [0,%d)",
				req.Op, req.Shard, len(s.shards)))
		}
		return s.shards[req.Shard], nil
	case wire.OpSync:
		// Sync with a path routes like a data op. With an empty path it
		// targets Request.Shard (clients wanting every shard issue one
		// per shard), defaulting to shard 0.
		if req.Path == "" {
			if req.Shard >= 0 && int(req.Shard) < len(s.shards) {
				return s.shards[req.Shard], nil
			}
			return s.shards[0], nil
		}
	case wire.OpMv:
		if req.Path == "" || req.Path2 == "" {
			return fail("mv needs two paths")
		}
		if s.ShardOf(req.Path) != s.ShardOf(req.Path2) {
			return fail(fmt.Sprintf("mv across shards (%d -> %d) is not supported",
				s.ShardOf(req.Path), s.ShardOf(req.Path2)))
		}
	default:
		if req.Path == "" {
			return fail(fmt.Sprintf("%v needs a path", req.Op))
		}
	}
	if len(req.Path) > wire.MaxPath || len(req.Path2) > wire.MaxPath {
		return fail("path too long")
	}
	if len(req.Data) > wire.MaxData {
		return fail("data too large")
	}
	return s.shards[s.ShardOf(req.Path)], nil
}

// Close drains and stops the server: new requests are refused with
// wire.StatusClosed, every already-queued request is answered, and all
// shard goroutines exit before Close returns. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Metrics snapshots per-shard and aggregate counters.
func (s *Server) Metrics() Metrics {
	var m Metrics
	var merged Histogram
	var batches, batchSum uint64
	for _, sh := range s.shards {
		sh.mu.Lock()
		row := ShardMetrics{
			Shard: sh.id, Ops: sh.ops, Errors: sh.errors, Retried: sh.retried,
			Rejected: sh.rejected, Bytes: sh.bytes, Batches: sh.batches,
			MaxBatch: sh.maxBatch, QueueLen: len(sh.ch), Down: sh.down,
			Crashes: sh.crashes, Warmboots: sh.warmboots,
			P50us: sh.lat.Quantile(0.50), P95us: sh.lat.Quantile(0.95),
			P99us: sh.lat.Quantile(0.99),
		}
		if sh.batches > 0 {
			row.AvgBatch = float64(sh.batchSum) / float64(sh.batches)
		}
		batches += sh.batches
		batchSum += sh.batchSum
		merged.Merge(&sh.lat)
		sh.mu.Unlock()
		m.Shards = append(m.Shards, row)
		m.Ops += row.Ops
		m.Bytes += row.Bytes
	}
	if batches > 0 {
		m.AvgBatch = float64(batchSum) / float64(batches)
	}
	m.P50us = merged.Quantile(0.50)
	m.P95us = merged.Quantile(0.95)
	m.P99us = merged.Quantile(0.99)
	return m
}

// run is the shard goroutine: drain a batch, serve it, repeat, until
// the channel closes — then serve what remains and exit. The batch
// size is recorded so the metrics show how much coalescing the queue
// actually achieves under load.
func (sh *shard) run(cfg Config) {
	batch := make([]task, 0, cfg.MaxBatch)
	for {
		if cfg.testGate != nil {
			cfg.testGate(sh.id)
		}
		t, ok := <-sh.ch
		if !ok {
			return
		}
		// One scheduler pass before draining lets producers racing this
		// wakeup land in the queue, so a pipelined burst is served as
		// one batch instead of K park/unpark handoffs. Under a single
		// synchronous client the runqueue is empty and the yield is a
		// few nanoseconds.
		runtime.Gosched()
		batch = append(batch[:0], t)
	drain:
		for len(batch) < cfg.MaxBatch {
			select {
			case t, ok := <-sh.ch:
				if !ok {
					// A receive only reports closed once the buffer is
					// empty, so this batch is the last of the work:
					// answer it and exit — Close promises a drain.
					sh.serve(batch)
					return
				}
				batch = append(batch, t)
			default:
				break drain
			}
		}
		sh.serve(batch)
	}
}

// serve answers one drained batch sequentially on the shard's System.
func (sh *shard) serve(batch []task) {
	type done struct {
		t    task
		resp *wire.Response
	}
	results := make([]done, 0, len(batch))
	for _, t := range batch {
		results = append(results, done{t, sh.handle(t.req)})
	}
	now := time.Now()
	sh.mu.Lock()
	sh.batches++
	sh.batchSum += uint64(len(batch))
	if len(batch) > sh.maxBatch {
		sh.maxBatch = len(batch)
	}
	for _, d := range results {
		sh.ops++
		sh.bytes += uint64(len(d.t.req.Data) + len(d.resp.Data))
		switch {
		case d.resp.Status == wire.StatusOK:
		case d.resp.Status.Retryable():
			sh.retried++
		default:
			sh.errors++
		}
		sh.lat.Observe(now.Sub(d.t.enq))
	}
	sh.mu.Unlock()
	for _, d := range results {
		d.t.resp <- d.resp
	}
}

// setDown flips the shard's outage flag (shard goroutine only).
func (sh *shard) setDown(v bool) {
	sh.mu.Lock()
	sh.down = v
	sh.mu.Unlock()
}

func (sh *shard) isDown() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.down
}

// handle executes one request against the shard's System. Runs only on
// the shard goroutine.
func (sh *shard) handle(req *wire.Request) *wire.Response {
	ok := func() *wire.Response { return &wire.Response{ID: req.ID, Status: wire.StatusOK} }
	fail := func(st wire.Status, msg string) *wire.Response {
		return &wire.Response{ID: req.ID, Status: st, Msg: msg}
	}

	switch req.Op {
	case wire.OpCrash:
		if sh.isDown() {
			return fail(wire.StatusInvalid, fmt.Sprintf("shard %d already down", sh.id))
		}
		sh.sys.Crash("riod: administrative crash op")
		sh.setDown(true)
		sh.mu.Lock()
		sh.crashes++
		sh.mu.Unlock()
		return ok()

	case wire.OpWarmboot:
		// Legal on a healthy shard too: Rio supports a clean
		// administrative warm reboot.
		rep, err := sh.sys.WarmReboot()
		if err != nil {
			// Volume lost; the shard stays down rather than serve a
			// filesystem it cannot certify.
			sh.setDown(true)
			return fail(wire.StatusIO, "warm reboot failed: "+err.Error())
		}
		sh.setDown(false)
		sh.mu.Lock()
		sh.warmboots++
		sh.mu.Unlock()
		r := ok()
		r.Size = int64(rep.MetaRestored + rep.DataRestored)
		return r
	}

	if sh.isDown() {
		return fail(wire.StatusAgain, fmt.Sprintf("shard %d down (crashed; awaiting warmboot)", sh.id))
	}

	resp := sh.data(req)
	// A shard that crashed organically mid-request (it cannot inject
	// its own faults, but belt and braces) flips to the outage path so
	// later requests get the retryable status instead of nonsense.
	if crashed, why := sh.sys.Crashed(); crashed {
		sh.setDown(true)
		return fail(wire.StatusAgain, fmt.Sprintf("shard %d crashed serving request: %s", sh.id, why))
	}
	return resp
}

// data executes a data op. Runs only on the shard goroutine, only on a
// healthy shard.
func (sh *shard) data(req *wire.Request) *wire.Response {
	sys := sh.sys
	resp := &wire.Response{ID: req.ID}
	fail := func(err error) *wire.Response {
		resp.Status, resp.Msg = statusOf(err)
		return resp
	}

	switch req.Op {
	case wire.OpOpen:
		if _, err := sys.Stat(req.Path); err == nil {
			return resp
		} else if !rio.IsNotExist(err) {
			return fail(err)
		}
		f, err := sh.create(req.Path)
		if err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}

	case wire.OpRead:
		st, err := sys.Stat(req.Path)
		if err != nil {
			return fail(err)
		}
		if st.IsDir {
			return fail(rio.ErrIsDir)
		}
		if req.Offset < 0 {
			resp.Status, resp.Msg = wire.StatusInvalid, "negative read offset"
			return resp
		}
		resp.Size = st.Size
		want := int64(req.Len)
		if want == 0 || want > wire.MaxData {
			want = wire.MaxData
		}
		if remain := st.Size - req.Offset; remain < want {
			want = remain
		}
		if want <= 0 {
			return resp
		}
		f, err := sys.Open(req.Path)
		if err != nil {
			return fail(err)
		}
		buf := make([]byte, want)
		n, err := f.ReadAt(buf, req.Offset)
		cerr := f.Close()
		if err != nil {
			return fail(err)
		}
		if cerr != nil {
			return fail(cerr)
		}
		resp.Data = buf[:n]

	case wire.OpWrite:
		f, err := sys.Open(req.Path)
		if rio.IsNotExist(err) {
			f, err = sh.create(req.Path)
		}
		if err != nil {
			return fail(err)
		}
		off := req.Offset
		if off < 0 {
			if off, err = f.Size(); err != nil {
				f.Close()
				return fail(err)
			}
		}
		n, err := f.WriteAt(req.Data, off)
		cerr := f.Close()
		resp.Size = int64(n)
		if err != nil {
			return fail(err)
		}
		if cerr != nil {
			return fail(cerr)
		}

	case wire.OpMkdir:
		if err := sh.mkdirAll(req.Path); err != nil {
			return fail(err)
		}

	case wire.OpRm:
		if err := sys.Remove(req.Path); err != nil {
			return fail(err)
		}

	case wire.OpMv:
		if err := sys.Rename(req.Path, req.Path2); err != nil {
			return fail(err)
		}

	case wire.OpStat:
		st, err := sys.Stat(req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Size = st.Size
		if st.IsDir {
			resp.Flags |= wire.FlagDir
		}
		if st.IsSymlink {
			resp.Flags |= wire.FlagSymlink
		}

	case wire.OpSync:
		sys.Sync()

	default:
		resp.Status = wire.StatusInvalid
		resp.Msg = fmt.Sprintf("op %v not servable", req.Op)
	}
	return resp
}

// create makes path, materialising missing parent directories first.
// Each shard is its own filesystem, so a directory tree exists
// per-shard: creating /smoke/f01 on shard 3 creates shard 3's /smoke.
// Open and write therefore have mkdir-p semantics — a path-keyed store
// where a key's parents are namespace bookkeeping, not client state.
func (sh *shard) create(path string) (*rio.File, error) {
	f, err := sh.sys.Create(path)
	if err != rio.ErrNotFound {
		return f, err
	}
	if err := sh.mkdirAll(parentDir(path)); err != nil {
		return nil, err
	}
	return sh.sys.Create(path)
}

// mkdirAll creates path and any missing parents (mkdir -p).
func (sh *shard) mkdirAll(path string) error {
	if path == "" || path == "/" {
		return nil
	}
	if st, err := sh.sys.Stat(path); err == nil {
		if st.IsDir {
			return nil
		}
		return rio.ErrNotDir
	}
	if err := sh.mkdirAll(parentDir(path)); err != nil {
		return err
	}
	if err := sh.sys.Mkdir(path); err != nil && err != rio.ErrExists {
		return err
	}
	return nil
}

// parentDir returns path's parent ("/a/b" -> "/a", "/a" -> "/").
func parentDir(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}

// statusOf maps the public rio error codes onto wire statuses.
func statusOf(err error) (wire.Status, string) {
	switch err {
	case nil:
		return wire.StatusOK, ""
	case rio.ErrNotFound:
		return wire.StatusNotFound, err.Error()
	case rio.ErrExists:
		return wire.StatusExists, err.Error()
	case rio.ErrIsDir:
		return wire.StatusIsDir, err.Error()
	case rio.ErrNotDir:
		return wire.StatusNotDir, err.Error()
	case rio.ErrNotEmpty:
		return wire.StatusNotEmpty, err.Error()
	case rio.ErrNoSpace, rio.ErrNoInodes:
		return wire.StatusNoSpace, err.Error()
	case rio.ErrReadOnly:
		return wire.StatusReadOnly, err.Error()
	default:
		return wire.StatusIO, err.Error()
	}
}
