package kernel

import (
	"testing"

	"rio/internal/sim"
)

// TestCksumBytesUnrolled holds the unrolled checksum to the byte-serial
// reference, bit for bit, across every length class the unroll has a
// branch for (empty, sub-word tails, exact multiples of 8, block-sized)
// and across random content. Registry checksums and golden crash
// transcripts are derived from these values; any divergence is silent
// corruption of the warm-reboot certification.
func TestCksumBytesUnrolled(t *testing.T) {
	rng := sim.NewRand(1996)
	lengths := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 511, 512, 4095, 4096, 8192}
	for _, n := range lengths {
		for trial := 0; trial < 4; trial++ {
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(rng.Uint64())
			}
			if got, want := CksumBytes(b), cksumBytesRef(b); got != want {
				t.Fatalf("len %d trial %d: CksumBytes %#x, reference %#x", n, trial, got, want)
			}
		}
	}
}

func BenchmarkCksumBytes(b *testing.B) {
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		CksumBytes(buf)
	}
}
