package machine

import (
	"fmt"
	"strings"

	"rio/internal/kernel"
	"rio/internal/kvm"
	"rio/internal/mem"
	"rio/internal/mmu"
)

// The paper's authors deferred fault-propagation tracing as "extremely
// challenging" on real hardware (§3.3, footnote 2). In the simulator it is
// a ring buffer: attach a tracer (EnableTrace), crash, and Postmortem
// explains where the dying kernel was executing and what its last stores
// hit — including whether any landed in the file cache.

// EnableTrace attaches an execution tracer remembering the last n
// instructions. Call before running workload; only meaningful on
// interpreted (non-FastPath) machines.
func (m *Machine) EnableTrace(n int) *kvm.Tracer {
	t := kvm.NewTracer(n)
	m.Kernel.VM.Trace = t
	return t
}

// StoreClass classifies where a store landed.
type StoreClass string

// Store target classes.
const (
	StoreStack    StoreClass = "kernel stack"
	StoreHeap     StoreClass = "kernel heap"
	StoreStaging  StoreClass = "staging"
	StoreMeta     StoreClass = "buffer cache (metadata)"
	StoreUBC      StoreClass = "UBC (file data)"
	StoreRegistry StoreClass = "registry"
	StoreFree     StoreClass = "free frame"
	StoreUnmapped StoreClass = "unmapped/illegal"
)

// ClassifyStore maps a store's virtual/KSEG address to what it would hit.
func (m *Machine) ClassifyStore(addr uint64) StoreClass {
	var frame int
	switch {
	case mmu.IsKSEG(addr):
		phys := mmu.KSEGToPhys(addr)
		if !m.Mem.Contains(phys) {
			return StoreUnmapped
		}
		frame = mem.FrameOf(phys)
	case addr >= kernel.StackLimit && addr < kernel.StackTop:
		return StoreStack
	case addr >= kernel.HeapBase && addr < kernel.HeapBase+kernel.HeapSize:
		return StoreHeap
	case addr >= kernel.StagingBase && addr < kernel.StagingBase+kernel.StagingSize:
		return StoreStaging
	default:
		// Virtual: resolve through the page table (dyn mappings).
		pte, ok := m.MMU.Lookup(addr / mem.PageSize)
		if !ok {
			return StoreUnmapped
		}
		frame = pte.Frame
	}
	f := m.Mem.Frame(frame)
	switch {
	case f.Registry:
		return StoreRegistry
	case f.FileCache:
		// Meta pages have virtual (dyn) mappings; UBC pages are reached
		// by KSEG. Distinguish by class list.
		for _, mf := range m.Kernel.FramesOf(kernel.FrameMeta) {
			if mf == frame {
				return StoreMeta
			}
		}
		return StoreUBC
	default:
		return StoreFree
	}
}

// Postmortem summarises a crash: what killed the kernel, the tail of
// execution, and where the final stores landed.
type Postmortem struct {
	CrashKind   string
	CrashReason string
	PC          int
	Proc        string
	Registers   [kvm.NumRegs]uint64
	// Tail is the disassembled tail of execution.
	Tail string
	// StoreHisto counts recent stores by target class.
	StoreHisto map[StoreClass]int
	// FileCacheStores lists recent stores that hit file-cache or registry
	// frames — the stores Rio's protection exists to stop.
	FileCacheStores []string
}

// Format renders the report.
func (p *Postmortem) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crash: %s — %s\n", p.CrashKind, p.CrashReason)
	fmt.Fprintf(&b, "pc=%d in %s\n", p.PC, p.Proc)
	fmt.Fprintf(&b, "registers:")
	for i, v := range p.Registers {
		if i%4 == 0 {
			fmt.Fprintf(&b, "\n ")
		}
		fmt.Fprintf(&b, " r%-2d=%#-18x", i, v)
	}
	b.WriteString("\n\nrecent stores by target:\n")
	for _, class := range []StoreClass{StoreStack, StoreHeap, StoreStaging,
		StoreMeta, StoreUBC, StoreRegistry, StoreFree, StoreUnmapped} {
		if n := p.StoreHisto[class]; n > 0 {
			fmt.Fprintf(&b, "  %-26s %d\n", class, n)
		}
	}
	if len(p.FileCacheStores) > 0 {
		b.WriteString("\nstores into file cache / registry:\n")
		for _, s := range p.FileCacheStores {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	b.WriteString("\nexecution tail:\n")
	b.WriteString(p.Tail)
	return b.String()
}

// BuildPostmortem assembles the crash report. The machine must have
// crashed and must have a tracer attached (EnableTrace).
func (m *Machine) BuildPostmortem(tailLen int) (*Postmortem, error) {
	c := m.Kernel.Crashed()
	if c == nil {
		return nil, fmt.Errorf("machine: postmortem of a live machine")
	}
	tr := m.Kernel.VM.Trace
	if tr == nil {
		return nil, fmt.Errorf("machine: no tracer attached (EnableTrace)")
	}
	p := &Postmortem{
		CrashKind:   c.Kind.String(),
		CrashReason: c.Reason,
		PC:          c.PC,
		Proc:        "?",
		Registers:   m.Kernel.VM.Reg,
		Tail:        tr.Format(m.Text, tailLen),
		StoreHisto:  make(map[StoreClass]int),
	}
	if proc, ok := m.Text.ProcAt(c.PC); ok {
		p.Proc = proc.Name
	}
	for _, e := range tr.Stores() {
		class := m.ClassifyStore(e.Addr)
		p.StoreHisto[class]++
		if class == StoreMeta || class == StoreUBC || class == StoreRegistry {
			proc := "?"
			if pr, ok := m.Text.ProcAt(e.PC); ok {
				proc = pr.Name
			}
			p.FileCacheStores = append(p.FileCacheStores,
				fmt.Sprintf("step %d, %s pc=%d: [%#x] = %#x (%s)",
					e.Seq, proc, e.PC, e.Addr, e.Val, class))
		}
	}
	return p, nil
}
