package fs

import (
	"fmt"
	"strings"

	"rio/internal/cache"
)

// Local aliases keep the syscall code terse.
type cacheKind = cache.Kind

const (
	cacheMeta = cache.Meta
	cacheData = cache.Data
)

// File is an open file handle.
type File struct {
	fs   *FS
	Ino  uint32
	Path string

	pos     int64
	closed  bool
	pending int   // bytes written since last async flush (PolicyUFS)
	lastEnd int64 // end offset of the previous write (sequentiality test)
}

// --- path resolution ---

func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, fmt.Errorf("fs: unsupported path component %q", p)
		}
		if len(p) > MaxNameLen {
			return nil, ErrNameTooLong
		}
	}
	return parts, nil
}

// dirScan iterates a directory's entries; fn returns true to stop. It
// passes the block and slot of each live entry.
func (f *FS) dirScan(dirIno uint32, dir *Inode, fn func(d Dirent, block int64, slot int) bool) error {
	blocks := dir.Blocks()
	var dirty bool
	for fb := int64(0); fb < blocks; fb++ {
		db, err := f.bmap(dir, fb, false, &dirty)
		if err != nil {
			return err
		}
		if db == 0 {
			continue
		}
		b, err := f.metaBuf(db)
		if err != nil {
			return err
		}
		img := f.C.Contents(b)
		for s := 0; s < DirentsPerBlock; s++ {
			d := unmarshalDirent(img[s*DirentSize : (s+1)*DirentSize])
			if d.Ino == 0 {
				continue
			}
			if fn(d, db, s) {
				return nil
			}
		}
	}
	return nil
}

// lookup finds name in the directory dirIno. The dcache answers repeat
// lookups without touching directory blocks; entries only exist for
// names dirInsert wrote or a scan found, so a hit never bypasses the
// not-a-directory check a fresh scan would have made — a cached parent
// was a directory when the entry was added and dirRemove-before-free
// keeps it one for as long as the entry lives.
func (f *FS) lookup(dirIno uint32, name string) (uint32, error) {
	if ino, ok := f.dc.get(dirIno, name); ok {
		f.Stats.DcacheHits++
		return ino, nil
	}
	f.Stats.DcacheMisses++
	dir, err := f.getInode(dirIno)
	if err != nil {
		return 0, err
	}
	if dir.Mode != ModeDir {
		return 0, ErrNotDir
	}
	var found uint32
	err = f.dirScan(dirIno, &dir, func(d Dirent, _ int64, _ int) bool {
		if d.Name == name {
			found = d.Ino
			return true
		}
		return false
	})
	if err != nil {
		return 0, err
	}
	if found == 0 {
		return 0, ErrNotFound
	}
	f.dc.put(dirIno, name, found)
	return found, nil
}

// resolve walks path to an inode, following symbolic links (at most
// maxSymlinkDepth hops, like MAXSYMLINKS).
func (f *FS) resolve(path string) (uint32, error) {
	return f.resolveDepth(path, 0)
}

const maxSymlinkDepth = 8

func (f *FS) resolveDepth(path string, depth int) (uint32, error) {
	if depth > maxSymlinkDepth {
		return 0, ErrSymlinkLoop
	}
	// The walk iterates components in place rather than splitting into a
	// []string: resolve is on every served request's path, and the split
	// was the read path's last unavoidable allocation. The validation
	// prepass keeps splitPath's semantics — every component is checked
	// before the first lookup runs.
	p := strings.Trim(path, "/")
	if p == "" {
		return f.SB.RootIno, nil
	}
	if err := checkPathComponents(p); err != nil {
		return 0, err
	}
	ino := f.SB.RootIno
	for start := 0; start < len(p); {
		stop := len(p)
		if i := strings.IndexByte(p[start:], '/'); i >= 0 {
			stop = start + i
		}
		var err error
		ino, err = f.lookup(ino, p[start:stop])
		if err != nil {
			return 0, err
		}
		n, err := f.getInode(ino)
		if err != nil {
			return 0, err
		}
		if n.Mode == ModeSymlink {
			target := n.Target
			if !strings.HasPrefix(target, "/") {
				// Relative target: resolve against the link's directory.
				prefix := ""
				if start > 0 {
					prefix = p[:start-1]
				}
				target = "/" + prefix + "/" + target
			}
			// p[stop:] is "" for the last component, else "/rest".
			target = target + p[stop:]
			return f.resolveDepth(target, depth+1)
		}
		start = stop + 1
	}
	return ino, nil
}

// checkPathComponents applies splitPath's per-component validation to an
// already-trimmed, non-empty path without allocating the component slice.
func checkPathComponents(p string) error {
	for start := 0; start < len(p); {
		stop := len(p)
		if i := strings.IndexByte(p[start:], '/'); i >= 0 {
			stop = start + i
		}
		name := p[start:stop]
		if name == "" || name == "." || name == ".." {
			return fmt.Errorf("fs: unsupported path component %q", name)
		}
		if len(name) > MaxNameLen {
			return ErrNameTooLong
		}
		start = stop + 1
	}
	return nil
}

// resolveParent returns the parent directory inode and the final name.
func (f *FS) resolveParent(path string) (uint32, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, "", err
	}
	if len(parts) == 0 {
		return 0, "", fmt.Errorf("fs: %q has no parent", path)
	}
	ino := f.SB.RootIno
	for _, p := range parts[:len(parts)-1] {
		ino, err = f.lookup(ino, p)
		if err != nil {
			return 0, "", err
		}
	}
	return ino, parts[len(parts)-1], nil
}

// dirInsert adds (name, ino) to the directory, extending it if needed.
func (f *FS) dirInsert(dirIno uint32, name string, ino uint32) error {
	dir, err := f.getInode(dirIno)
	if err != nil {
		return err
	}
	var dirty bool
	// Find a free slot in existing blocks.
	blocks := dir.Blocks()
	for fb := int64(0); fb < blocks; fb++ {
		db, err := f.bmap(&dir, fb, false, &dirty)
		if err != nil {
			return err
		}
		if db == 0 {
			continue
		}
		b, err := f.metaBuf(db)
		if err != nil {
			return err
		}
		img := f.C.Contents(b)
		for s := 0; s < DirentsPerBlock; s++ {
			if unmarshalDirent(img[s*DirentSize:(s+1)*DirentSize]).Ino == 0 {
				marshalDirent(Dirent{Ino: ino, Name: name}, img[s*DirentSize:(s+1)*DirentSize])
				if err := f.metaUpdate(b, img, true); err != nil {
					return err
				}
				f.dc.put(dirIno, name, ino)
				return nil
			}
		}
	}
	// Extend the directory by one block.
	db, err := f.bmap(&dir, blocks, true, &dirty)
	if err != nil {
		return err
	}
	img := make([]byte, BlockSize)
	marshalDirent(Dirent{Ino: ino, Name: name}, img[:DirentSize])
	b, err := f.C.InsertMeta(db, nil)
	if err != nil {
		return err
	}
	if err := f.metaUpdate(b, img, true); err != nil {
		return err
	}
	dir.Size = (blocks + 1) * BlockSize
	if err := f.putInode(dirIno, &dir, true); err != nil {
		return err
	}
	f.dc.put(dirIno, name, ino)
	return nil
}

// dirRemove deletes name from the directory. The dcache entry goes
// first: once the dirent is gone (or if the removal errors partway) a
// stale mapping must not answer later lookups.
func (f *FS) dirRemove(dirIno uint32, name string) error {
	f.dc.invalidate(dirIno, name)
	dir, err := f.getInode(dirIno)
	if err != nil {
		return err
	}
	var block int64 = -1
	var slot int
	err = f.dirScan(dirIno, &dir, func(d Dirent, b int64, s int) bool {
		if d.Name == name {
			block, slot = b, s
			return true
		}
		return false
	})
	if err != nil {
		return err
	}
	if block < 0 {
		return ErrNotFound
	}
	b, err := f.metaBuf(block)
	if err != nil {
		return err
	}
	img := f.C.Contents(b)
	for i := 0; i < DirentSize; i++ {
		img[slot*DirentSize+i] = 0
	}
	return f.metaUpdate(b, img, true)
}

func (f *FS) dirEmpty(dirIno uint32) (bool, error) {
	dir, err := f.getInode(dirIno)
	if err != nil {
		return false, err
	}
	empty := true
	err = f.dirScan(dirIno, &dir, func(Dirent, int64, int) bool {
		empty = false
		return true
	})
	return empty, err
}

// --- syscalls ---

// Create makes a new regular file and opens it. It fails if the path
// already exists.
func (f *FS) Create(path string) (*File, error) {
	f.beginOp()
	defer f.endOp()
	if err := f.writable(); err != nil {
		return nil, err
	}
	parent, name, err := f.resolveParent(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.lookup(parent, name); err == nil {
		return nil, ErrExists
	} else if err != ErrNotFound {
		return nil, err
	}
	ino, err := f.ialloc(ModeFile)
	if err != nil {
		return nil, err
	}
	if err := f.dirInsert(parent, name, ino); err != nil {
		return nil, err
	}
	return &File{fs: f, Ino: ino, Path: path}, nil
}

// Open opens an existing regular file.
func (f *FS) Open(path string) (*File, error) {
	f.beginOp()
	defer f.endOp()
	ino, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	n, err := f.getInode(ino)
	if err != nil {
		return nil, err
	}
	if n.Mode == ModeDir {
		return nil, ErrIsDir
	}
	return &File{fs: f, Ino: ino, Path: path}, nil
}

// Mkdir creates a directory.
func (f *FS) Mkdir(path string) error {
	f.beginOp()
	defer f.endOp()
	if err := f.writable(); err != nil {
		return err
	}
	parent, name, err := f.resolveParent(path)
	if err != nil {
		return err
	}
	if _, err := f.lookup(parent, name); err == nil {
		return ErrExists
	} else if err != ErrNotFound {
		return err
	}
	ino, err := f.ialloc(ModeDir)
	if err != nil {
		return err
	}
	return f.dirInsert(parent, name, ino)
}

// Symlink creates a symbolic link at linkPath pointing at target. The
// target is stored inline in the inode ("fast symlink"), living in the
// buffer cache alongside the other metadata Rio protects.
func (f *FS) Symlink(target, linkPath string) error {
	f.beginOp()
	defer f.endOp()
	if err := f.writable(); err != nil {
		return err
	}
	if len(target) == 0 || len(target) > MaxTargetLen {
		return ErrNameTooLong
	}
	parent, name, err := f.resolveParent(linkPath)
	if err != nil {
		return err
	}
	if _, err := f.lookup(parent, name); err == nil {
		return ErrExists
	} else if err != ErrNotFound {
		return err
	}
	ino, err := f.ialloc(ModeSymlink)
	if err != nil {
		return err
	}
	n, err := f.getInode(ino)
	if err != nil {
		return err
	}
	n.Target = target
	n.Size = int64(len(target))
	if err := f.putInode(ino, &n, true); err != nil {
		return err
	}
	return f.dirInsert(parent, name, ino)
}

// Readlink returns a symbolic link's target (no following).
func (f *FS) Readlink(path string) (string, error) {
	f.beginOp()
	defer f.endOp()
	parent, name, err := f.resolveParent(path)
	if err != nil {
		return "", err
	}
	ino, err := f.lookup(parent, name)
	if err != nil {
		return "", err
	}
	n, err := f.getInode(ino)
	if err != nil {
		return "", err
	}
	if n.Mode != ModeSymlink {
		return "", ErrNotSymlink
	}
	return n.Target, nil
}

// Lstat describes a path without following a final symlink.
func (f *FS) Lstat(path string) (FileInfo, error) {
	f.beginOp()
	defer f.endOp()
	parent, name, err := f.resolveParent(path)
	if err != nil {
		return FileInfo{}, err
	}
	ino, err := f.lookup(parent, name)
	if err != nil {
		return FileInfo{}, err
	}
	n, err := f.getInode(ino)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: name, Ino: ino, IsDir: n.Mode == ModeDir,
		IsSymlink: n.Mode == ModeSymlink, Size: n.Size}, nil
}

// Unlink removes a regular file or symbolic link, freeing its blocks and
// inode.
func (f *FS) Unlink(path string) error {
	f.beginOp()
	defer f.endOp()
	if err := f.writable(); err != nil {
		return err
	}
	parent, name, err := f.resolveParent(path)
	if err != nil {
		return err
	}
	ino, err := f.lookup(parent, name)
	if err != nil {
		return err
	}
	n, err := f.getInode(ino)
	if err != nil {
		return err
	}
	if n.Mode == ModeDir {
		return ErrIsDir
	}
	if err := f.dirRemove(parent, name); err != nil {
		return err
	}
	if err := f.C.DropFileData(ino, 0); err != nil {
		return err
	}
	if err := f.freeFileBlocks(&n); err != nil {
		return err
	}
	n = Inode{Mode: ModeFree}
	return f.putInode(ino, &n, true)
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(path string) error {
	f.beginOp()
	defer f.endOp()
	if err := f.writable(); err != nil {
		return err
	}
	parent, name, err := f.resolveParent(path)
	if err != nil {
		return err
	}
	ino, err := f.lookup(parent, name)
	if err != nil {
		return err
	}
	n, err := f.getInode(ino)
	if err != nil {
		return err
	}
	if n.Mode != ModeDir {
		return ErrNotDir
	}
	empty, err := f.dirEmpty(ino)
	if err != nil {
		return err
	}
	if !empty {
		return ErrNotEmpty
	}
	if err := f.dirRemove(parent, name); err != nil {
		return err
	}
	// Free the directory's blocks (entries all dead).
	if err := f.freeFileBlocks(&n); err != nil {
		return err
	}
	n = Inode{Mode: ModeFree}
	return f.putInode(ino, &n, true)
}

// Rename moves oldPath to newPath, replacing a regular file at newPath.
func (f *FS) Rename(oldPath, newPath string) error {
	f.beginOp()
	defer f.endOp()
	if err := f.writable(); err != nil {
		return err
	}
	oldParent, oldName, err := f.resolveParent(oldPath)
	if err != nil {
		return err
	}
	ino, err := f.lookup(oldParent, oldName)
	if err != nil {
		return err
	}
	newParent, newName, err := f.resolveParent(newPath)
	if err != nil {
		return err
	}
	if existing, err := f.lookup(newParent, newName); err == nil {
		en, err := f.getInode(existing)
		if err != nil {
			return err
		}
		if en.Mode == ModeDir {
			return ErrIsDir
		}
		// Replace: unlink the target (inline, not via Unlink to avoid
		// double accounting).
		if err := f.dirRemove(newParent, newName); err != nil {
			return err
		}
		if err := f.C.DropFileData(existing, 0); err != nil {
			return err
		}
		if err := f.freeFileBlocks(&en); err != nil {
			return err
		}
		en = Inode{Mode: ModeFree}
		if err := f.putInode(existing, &en, true); err != nil {
			return err
		}
	} else if err != ErrNotFound {
		return err
	}
	if err := f.dirRemove(oldParent, oldName); err != nil {
		return err
	}
	return f.dirInsert(newParent, newName, ino)
}

// FileInfo is returned by Stat, Lstat, and ReadDir.
type FileInfo struct {
	Name      string
	Ino       uint32
	IsDir     bool
	IsSymlink bool
	Size      int64
}

// Stat describes a path.
func (f *FS) Stat(path string) (FileInfo, error) {
	f.beginOp()
	defer f.endOp()
	ino, err := f.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	n, err := f.getInode(ino)
	if err != nil {
		return FileInfo{}, err
	}
	parts, _ := splitPath(path)
	name := ""
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return FileInfo{Name: name, Ino: ino, IsDir: n.Mode == ModeDir, Size: n.Size}, nil
}

// ReadDir lists a directory.
func (f *FS) ReadDir(path string) ([]FileInfo, error) {
	f.beginOp()
	defer f.endOp()
	ino, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	dir, err := f.getInode(ino)
	if err != nil {
		return nil, err
	}
	if dir.Mode != ModeDir {
		return nil, ErrNotDir
	}
	var out []FileInfo
	err = f.dirScan(ino, &dir, func(d Dirent, _ int64, _ int) bool {
		n, gerr := f.getInode(d.Ino)
		if gerr != nil {
			err = gerr
			return true
		}
		out = append(out, FileInfo{Name: d.Name, Ino: d.Ino,
			IsDir: n.Mode == ModeDir, IsSymlink: n.Mode == ModeSymlink, Size: n.Size})
		return false
	})
	return out, err
}

// --- file I/O ---

// WriteAt writes data at offset off.
func (fl *File) WriteAt(data []byte, off int64) (int, error) {
	f := fl.fs
	if fl.closed {
		return 0, ErrClosed
	}
	if err := f.writable(); err != nil {
		return 0, err
	}
	f.beginOp()
	defer f.endOp()

	written, err := f.writeBlocks(fl.Ino, data, off)
	if err != nil {
		return written, err
	}

	// Policy-driven data write-back.
	switch {
	case f.Pol.dataWriteThrough():
		if err := f.fsyncData(fl.Ino, true); err != nil {
			return written, err
		}
	case f.Pol.asyncDataOnThreshold():
		nonSeq := fl.lastEnd != 0 && off != fl.lastEnd
		fl.pending += len(data)
		if nonSeq || fl.pending >= f.Pol.AsyncDataThreshold {
			f.asyncFlushData(fl.Ino)
			fl.pending = 0
		}
	}
	fl.lastEnd = off + int64(len(data))
	return written, nil
}

// writeBlocks is the write core shared by the handle path (WriteAt) and
// the handle-free serving path (WriteInoAt): fault in or allocate each
// touched block, write through the cache, and extend the inode size.
// The caller holds beginOp and has checked writability.
func (f *FS) writeBlocks(ino uint32, data []byte, off int64) (int, error) {
	n, err := f.getInode(ino)
	if err != nil {
		return 0, err
	}
	newSize := n.Size
	if off+int64(len(data)) > newSize {
		newSize = off + int64(len(data))
	}
	if newSize > int64(MaxFileBlocks)*BlockSize {
		return 0, ErrTooBig
	}
	inodeDirty := newSize != n.Size

	written := 0
	for written < len(data) {
		o := off + int64(written)
		fb := o / BlockSize
		bo := int(o % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(data)-written {
			chunk = len(data) - written
		}
		buf := f.C.LookupData(ino, fb)
		if buf == nil {
			db, err := f.bmap(&n, fb, true, &inodeDirty)
			if err != nil {
				return written, err
			}
			var content []byte
			// Fault in the old contents only for a partial overwrite of a
			// block that already has data.
			if (bo != 0 || chunk != BlockSize) && fb < n.Blocks() {
				content = f.readBlockSync(db)
			}
			valid := 0
			if end := n.Size - fb*BlockSize; end > 0 {
				if end > BlockSize {
					end = BlockSize
				}
				valid = int(end)
			}
			buf, err = f.C.InsertData(ino, fb, db, content, valid)
			if err != nil {
				return written, err
			}
		}
		valid := int64(BlockSize)
		if end := newSize - fb*BlockSize; end < valid {
			valid = end
		}
		if err := f.C.Write(buf, bo, data[written:written+chunk], int(valid)); err != nil {
			return written, err
		}
		written += chunk
	}

	if inodeDirty || newSize != n.Size {
		n.Size = newSize
		if err := f.putInode(ino, &n, false); err != nil {
			return written, err
		}
	}
	return written, nil
}

// WriteInoAt writes data at off to an inode returned by Lookup, without
// constructing a handle. Policy write-back matches the serving layer's
// old open-write-close sequence exactly: write-through policies sync
// after the write, the async threshold compares against this write
// alone (a fresh handle has no pending count), and sync-on-close
// policies get the flush Close would have issued.
func (f *FS) WriteInoAt(ino uint32, data []byte, off int64) (int, error) {
	if err := f.writable(); err != nil {
		return 0, err
	}
	f.beginOp()
	defer f.endOp()

	written, err := f.writeBlocks(ino, data, off)
	if err != nil {
		return written, err
	}
	switch {
	case f.Pol.dataWriteThrough():
		if err := f.fsyncData(ino, true); err != nil {
			return written, err
		}
	case f.Pol.asyncDataOnThreshold():
		if len(data) >= f.Pol.AsyncDataThreshold {
			f.asyncFlushData(ino)
		}
	}
	if f.Pol.fsyncOnClose() {
		return written, f.fsyncData(ino, true)
	}
	return written, nil
}

// Write appends at the file position.
func (fl *File) Write(data []byte) (int, error) {
	n, err := fl.WriteAt(data, fl.pos)
	fl.pos += int64(n)
	return n, err
}

// ReadAt reads up to len(buf) bytes from offset off.
func (fl *File) ReadAt(buf []byte, off int64) (int, error) {
	f := fl.fs
	if fl.closed {
		return 0, ErrClosed
	}
	f.beginOp()
	defer f.endOp()
	return f.readInoAt(fl.Ino, buf, off, false)
}

// Lookup resolves a path in one walk and returns the fields the serving
// path needs — inode number, size, directory bit — without constructing
// a handle. A follow-up ReadInoAt on the returned inode replaces the
// Stat+Open+ReadAt+Close sequence (three resolutions, one allocation)
// with a single resolution and none.
func (f *FS) Lookup(path string) (ino uint32, size int64, isDir bool, err error) {
	f.beginOp()
	defer f.endOp()
	ino, err = f.resolve(path)
	if err != nil {
		return 0, 0, false, err
	}
	n, err := f.getInode(ino)
	if err != nil {
		return 0, 0, false, err
	}
	return ino, n.Size, n.Mode == ModeDir, nil
}

// ReadInoAt reads up to len(buf) bytes at off from an inode returned by
// Lookup, copying cache frames directly into buf (Cache.ReadDirect's
// one-copy path) instead of bouncing through the kernel staging area.
func (f *FS) ReadInoAt(ino uint32, buf []byte, off int64) (int, error) {
	f.beginOp()
	defer f.endOp()
	return f.readInoAt(ino, buf, off, true)
}

// readInoAt is the block loop shared by File.ReadAt and FS.ReadInoAt;
// direct selects Cache.ReadDirect over the staged ReadInto.
func (f *FS) readInoAt(ino uint32, buf []byte, off int64, direct bool) (int, error) {
	n, err := f.getInode(ino)
	if err != nil {
		return 0, err
	}
	if off >= n.Size {
		return 0, nil
	}
	want := int64(len(buf))
	if off+want > n.Size {
		want = n.Size - off
	}
	read := 0
	var inodeDirty bool
	for int64(read) < want {
		o := off + int64(read)
		fb := o / BlockSize
		bo := int(o % BlockSize)
		chunk := BlockSize - bo
		if int64(chunk) > want-int64(read) {
			chunk = int(want - int64(read))
		}
		b := f.C.LookupData(ino, fb)
		if b == nil {
			db, err := f.bmap(&n, fb, false, &inodeDirty)
			if err != nil {
				return read, err
			}
			var content []byte
			if db != 0 {
				content = f.readBlockSync(db)
			}
			valid := 0
			if end := n.Size - fb*BlockSize; end > 0 {
				if end > BlockSize {
					end = BlockSize
				}
				valid = int(end)
			}
			b, err = f.C.InsertData(ino, fb, db, content, valid)
			if err != nil {
				return read, err
			}
		}
		dst := buf[read : read+chunk]
		if direct {
			err = f.C.ReadDirect(b, bo, dst)
		} else {
			err = f.C.ReadInto(b, bo, dst)
		}
		if err != nil {
			return read, err
		}
		read += chunk
	}
	return read, nil
}

// Read reads from the file position.
func (fl *File) Read(buf []byte) (int, error) {
	n, err := fl.ReadAt(buf, fl.pos)
	fl.pos += int64(n)
	return n, err
}

// SetPos sets the file position for Read/Write.
func (fl *File) SetPos(pos int64) { fl.pos = pos }

// Pos returns the current file position.
func (fl *File) Pos() int64 { return fl.pos }

// Size returns the current file size.
func (fl *File) Size() (int64, error) {
	n, err := fl.fs.getInode(fl.Ino)
	return n.Size, err
}

// Close closes the handle, applying the policy's close semantics.
func (fl *File) Close() error {
	if fl.closed {
		return ErrClosed
	}
	f := fl.fs
	f.beginOp()
	defer f.endOp()
	fl.closed = true
	if f.Pol.fsyncOnClose() {
		return f.fsyncData(fl.Ino, true)
	}
	return nil
}

// fsyncData flushes an inode's dirty data pages (and inode block) to disk.
func (f *FS) fsyncData(ino uint32, syncWait bool) error {
	if f.Pol.neverWrite() {
		return nil
	}
	for _, b := range f.C.DirtyBufs(cacheData) {
		if b.Ino != ino || b.Block < 0 {
			continue
		}
		if syncWait {
			f.writeBlockSync(b.Block, f.C.Contents(b))
		} else {
			f.writeBlockAsync(b.Block, f.C.Contents(b))
		}
		if err := f.C.MarkClean(b); err != nil {
			return err
		}
	}
	// Push the inode block too.
	ib := f.C.LookupMeta(f.inodeBlock(ino))
	if ib != nil && ib.Dirty {
		if syncWait {
			f.writeBlockSync(ib.Block, f.C.Contents(ib))
		} else {
			f.writeBlockAsync(ib.Block, f.C.Contents(ib))
		}
		if err := f.C.MarkClean(ib); err != nil {
			return err
		}
	}
	return nil
}

// asyncFlushData pushes an inode's dirty data pages asynchronously,
// sequentially pricing runs of consecutive blocks (the 64 KB UFS chunks).
func (f *FS) asyncFlushData(ino uint32) {
	for _, b := range f.C.DirtyBufs(cacheData) {
		if b.Ino != ino || b.Block < 0 {
			continue
		}
		f.writeBlockAsync(b.Block, f.C.Contents(b))
		_ = f.C.MarkClean(b)
	}
}

// Fsync makes a file durable. Under Rio it returns immediately: every
// write is already as permanent as disk.
func (f *FS) Fsync(fl *File) error {
	f.beginOp()
	defer f.endOp()
	f.Stats.Fsyncs++
	if f.Pol.syncIsNoop() {
		return nil
	}
	return f.fsyncData(fl.Ino, true)
}

// Sync schedules all dirty buffers for write-back (asynchronously, like
// sync(2)). A no-op under Rio and MFS.
func (f *FS) Sync() {
	f.beginOp()
	defer f.endOp()
	if f.Pol.syncIsNoop() {
		return
	}
	f.flushAllAsync()
}

// Unmount flushes everything synchronously and stops the daemon. Used by
// tests and verification flows; performance runs measure workloads without
// unmounting, as the paper did.
func (f *FS) Unmount() {
	if !f.mounted {
		return
	}
	f.mounted = false
	if f.daemonEv != nil {
		f.Eng.Cancel(f.daemonEv)
	}
	if !f.Pol.neverWrite() {
		for _, kind := range []cacheKind{cacheMeta, cacheData} {
			for _, b := range f.C.DirtyBufs(kind) {
				if b.Block >= 0 {
					f.writeBlockSync(b.Block, f.C.Contents(b))
					_ = f.C.MarkClean(b)
				}
			}
		}
	}
	f.drainPending()
}
