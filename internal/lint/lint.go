// Package lint is riolint's engine: a stdlib-only static-analysis
// framework (go/ast + go/types; no x/tools, honoring the repo's
// stdlib-only rule) plus the eight analyzers that encode invariants this
// codebase has been burned by. The compiler cannot see Rio's safety
// arguments — that every file-cache store happens inside a brief
// write-permission window (the paper's §3 protection discipline), that
// every simulated outcome is a pure function of seeds, that a
// transaction commit is published and applied before it is acked, and
// that the fleet replicates before acking — so riolint enforces them as
// a tier-1 gate instead of leaving them to reviewer vigilance.
//
// The engine runs in two tiers. The per-function analyzers walk one body
// at a time; the interprocedural ones (bufalias, replorder, wirebounds)
// additionally consult a module-wide Program — a call graph plus
// per-function dataflow summaries (interproc.go) — so a pooled buffer
// leaked three calls away from the pool, or an epoch persisted via a
// helper, is still seen.
//
// Analyzers (see their files for the precise rules):
//
//   - maporder: order-sensitive effects inside range-over-map loops in
//     determinism-critical packages (the PR-2 DropFileData/FramesOf bug
//     class).
//   - walltime: time.Now/Sleep/... and math/rand in simulation packages;
//     time must flow through the sim clock, randomness through sim.Mix
//     and sim.Rand.
//   - protpair: every SetFrameProtection(f, false) must be re-protected
//     on all return paths of the same function (the paper's sanctioned-
//     write window).
//   - seedflow: seeds derived by arithmetic on a shared counter
//     (seed++, seed+i) instead of sim.Mix (the PR-1 bug class).
//   - commitorder: the transaction layer's publish -> apply -> erase ->
//     ack protocol; acking a commit before its record is published and
//     applied is a torn-commit window.
//   - bufalias: pooled and frame-aliased buffers (kernel scratch, the fs
//     block pool, Into-style destinations) must not escape their
//     sanctioned window — no heap stores, channel sends, goroutine
//     hand-offs, or use after release, tracked interprocedurally.
//   - replorder: the fleet's exec -> persist -> replicate -> ack
//     ordering, fenced reads, and persisted epoch adoption (the PR-7
//     review bug class).
//   - wirebounds: every decoded wire/RFL1/RSN1 length is checked against
//     its protocol maximum and the remaining buffer before any
//     allocation or slice.
//
// A finding is silenced with a suppression comment naming the
// analyzer's directive and a mandatory reason:
//
//	//riolint:ordered  <why iteration order is benign here>
//	//riolint:walltime <why this site may read the host clock>
//	//riolint:protpair <why the frame legitimately stays writable>
//	//riolint:seedflow <why this arithmetic is not seed derivation>
//	//riolint:commitorder <why this protocol verb legitimately runs early>
//	//riolint:bufalias <why this custody transfer of a pooled buffer is sanctioned>
//	//riolint:replorder <why this replication verb legitimately reorders>
//	//riolint:wirebounds <why this decoded length needs no protocol maximum>
//
// The comment attaches to the line it sits on, or, as a standalone
// comment, to the line directly below it. A reason is required: a bare
// directive is itself a diagnostic, as is a suppression that no longer
// suppresses anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// A Diagnostic is one finding, printable as "file:line:col: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// An Analyzer checks one invariant over one type-checked package.
type Analyzer struct {
	Name string
	// Directive is the suppression name accepted after "//riolint:"
	// (the analyzer name is always accepted as an alias).
	Directive string
	Doc       string
	Run       func(*Pass)
}

// All returns the full riolint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Maporder, Walltime, Protpair, Seedflow, Commitorder, Bufalias, Replorder, Wirebounds}
}

// A Pass hands one analyzer one package plus a reporting callback.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Prog is the interprocedural view over every package in this Run
	// (call graph + summaries), shared across analyzers and packages.
	Prog *Program

	diags *[]Diagnostic
	supp  *suppressions
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Reportf records a diagnostic at pos unless a suppression comment for
// this analyzer covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.supp.covers(p.Analyzer, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "//riolint:"

// suppression is one parsed //riolint: comment.
type suppression struct {
	directive string
	reason    string
	pos       token.Position
	used      bool
}

// suppressions indexes a package's directives by (file, line): a comment
// covers its own line and, when it stands alone, the line below it.
type suppressions struct {
	byLine map[string]map[int]*suppression
	all    []*suppression
}

func parseSuppressions(fset *token.FileSet, pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]*suppression)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				directive, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				sup := &suppression{
					directive: directive,
					reason:    strings.TrimSpace(reason),
					pos:       pos,
				}
				s.all = append(s.all, sup)
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]*suppression)
					s.byLine[pos.Filename] = lines
				}
				// The comment always covers its own line; a standalone
				// comment (nothing but whitespace before it on its line)
				// also covers the next line, the annotated statement.
				lines[pos.Line] = sup
				if standsAlone(pkg, pos) {
					lines[pos.Line+1] = sup
				}
			}
		}
	}
	return s
}

// standsAlone reports whether the comment at pos is the first token on
// its source line (an annotation above a statement rather than trailing
// one).
func standsAlone(pkg *Package, pos token.Position) bool {
	lines := pkg.Sources[pos.Filename]
	if pos.Line-1 >= len(lines) || pos.Column < 1 {
		return false
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 < len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}

// covers reports (and marks used) a matching suppression at position.
func (s *suppressions) covers(a *Analyzer, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	sup := lines[pos.Line]
	if sup == nil {
		return false
	}
	if sup.directive != a.Directive && sup.directive != a.Name {
		return false
	}
	if sup.reason == "" {
		// An unreasoned directive never suppresses; lintDirectives flags it.
		return false
	}
	sup.used = true
	return true
}

// lintDirectives validates the package's //riolint: comments themselves:
// unknown directives, missing reasons, and suppressions that no longer
// suppress anything (only for analyzers that actually ran).
func lintDirectives(supp *suppressions, ran []*Analyzer, diags *[]Diagnostic) {
	known := make(map[string]*Analyzer)
	for _, a := range All() {
		known[a.Name] = a
		known[a.Directive] = a
	}
	ranSet := make(map[*Analyzer]bool)
	for _, a := range ran {
		ranSet[a] = true
	}
	for _, sup := range supp.all {
		a := known[sup.directive]
		switch {
		case a == nil:
			*diags = append(*diags, Diagnostic{Pos: sup.pos, Analyzer: "riolint",
				Message: fmt.Sprintf("unknown suppression directive %q (known: ordered, walltime, protpair, seedflow, commitorder, bufalias, replorder, wirebounds)", sup.directive)})
		case sup.reason == "":
			*diags = append(*diags, Diagnostic{Pos: sup.pos, Analyzer: "riolint",
				Message: fmt.Sprintf("suppression %q needs a reason: //riolint:%s <why this is safe>", sup.directive, sup.directive)})
		case !sup.used && ranSet[a]:
			*diags = append(*diags, Diagnostic{Pos: sup.pos, Analyzer: "riolint",
				Message: fmt.Sprintf("suppression %q no longer suppresses anything; delete it", sup.directive)})
		}
	}
}

// Run executes the given analyzers over the packages and returns all
// diagnostics sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(fset, pkgs, analyzers)
	return diags
}

// An AnalyzerTime is one analyzer's total wall time across a Run, for
// the CLI's -json output.
type AnalyzerTime struct {
	Name    string
	Elapsed time.Duration
}

// RunTimed is Run plus per-analyzer wall time, in the order the
// analyzers were given (the interprocedural Program build is charged to
// the first analyzer that forces it).
func RunTimed(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerTime) {
	var diags []Diagnostic
	prog := buildProgram(fset, pkgs)
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		supp := parseSuppressions(fset, pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, Prog: prog, diags: &diags, supp: supp}
			start := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(start)
		}
		lintDirectives(supp, analyzers, &diags)
	}
	times := make([]AnalyzerTime, 0, len(analyzers))
	for _, a := range analyzers {
		times = append(times, AnalyzerTime{Name: a.Name, Elapsed: elapsed[a.Name]})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, times
}

// detPackages are the determinism-critical package names: simulation
// state, the storage stack, and everything a crash campaign's byte-
// identical-report guarantee flows through. maporder and walltime apply
// only here; protpair and seedflow apply module-wide.
var detPackages = map[string]bool{
	"sim": true, "disk": true, "fs": true, "cache": true,
	"kernel": true, "mmu": true, "machine": true, "warmreboot": true,
	"ioretry": true, "crashtest": true, "fleetcampaign": true,
	"registry": true, "workload": true, "fault": true, "scenario": true,
}

// baseIdent unwraps selectors, indexing, stars, and parens down to the
// leftmost identifier: c.Stats.Evictions -> c, seeds[i] -> seeds.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
