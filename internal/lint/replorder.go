package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Replorder is the fleet's commitorder: it pins the replication
// protocol's crash-safety ordering (DESIGN.md §8) as typestate the
// compiler cannot see. The ordering is the whole machine-loss argument:
//
//	exec → advance seq → persist seq → replicate to every active
//	backup → ack the client
//
// and, on the control plane, a replica that adopts a higher epoch must
// persist it before doing anything else — PR 7's review found exactly
// that bug (a promoted primary whose epoch died with the process), so
// the class is now a gate. Like commitorder, recognition is structural
// and per-function-body, but the persist check is interprocedural: a
// call that transitively reaches persistSeq counts as persisting.
//
// Rules, in internal/fleet (and fixtures declaring package fleet):
//
//  1. ack-before-replicate: returning a server.Exec result before the
//     first confirmPeers/replicateTo call, unguarded by a Status check
//     and not on the fenced read path, acks a write a machine loss can
//     still drop.
//  2. persist-before-exec: advancing and persisting the sequence number
//     before the op executes makes tail replay skip the op after a
//     crash between the two.
//  3. unfenced read: a function that branches on op mutability and
//     executes ops must call readFence before executing, and must use
//     its result — a deposed primary that skips or ignores the fence
//     serves stale reads.
//  4. unpersisted epoch adoption: assigning a new epoch (other than
//     loading it from stable storage) without a subsequent call that
//     reaches persistSeq leaves promotion volatile across warm reboot.
//
// A site that legitimately reorders carries //riolint:replorder <reason>.
var Replorder = &Analyzer{
	Name:      "replorder",
	Directive: "replorder",
	Doc:       "fleet replication must exec, persist, replicate, then ack; adopted epochs must be persisted",
	Run:       runReplorder,
}

func runReplorder(p *Pass) {
	if p.Pkg.Name != "fleet" {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkReplContext(p, fn.Body)
				}
			case *ast.FuncLit:
				checkReplContext(p, fn.Body)
			}
			return true
		})
	}
}

// replEvents is one function body's protocol activity, positionally.
type replEvents struct {
	execs      []token.Pos
	confirm    token.Pos // first confirmPeers/replicateTo
	fences     []token.Pos
	fenceDrops []token.Pos // readFence calls whose result is discarded
	persists   []token.Pos // direct or transitive persistSeq
	seqAdvs    []token.Pos // writes to a .seq field
	adopts     []token.Pos // non-load writes to a .epoch field
	mutating   token.Pos   // first mutability branch
	acks       []token.Pos // returns of an Exec-derived value (unguarded)
}

func checkReplContext(p *Pass, body *ast.BlockStmt) {
	var ev replEvents
	execVars := make(map[string]bool) // idents assigned from an Exec call
	guards := statusGuardRanges(body)

	own := func(n ast.Node) bool {
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	}

	// First sweep: calls, field writes, exec-result bindings.
	ast.Inspect(body, func(n ast.Node) bool {
		if n != nil && !own(n) && n != body {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			switch calleeName(s) {
			case "Exec":
				ev.execs = append(ev.execs, s.Pos())
			case "confirmPeers", "replicateTo":
				if ev.confirm == token.NoPos {
					ev.confirm = s.Pos()
				}
			case "readFence":
				ev.fences = append(ev.fences, s.Pos())
			case "persistSeq":
				ev.persists = append(ev.persists, s.Pos())
			case "mutating":
				if ev.mutating == token.NoPos {
					ev.mutating = s.Pos()
				}
			default:
				if p.Prog != nil {
					if callee := staticCallee(p.Pkg.Info, s); callee != nil &&
						p.Prog.funcs[callee] != nil && p.Prog.reachesName(callee, "persistSeq") {
						ev.persists = append(ev.persists, s.Pos())
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && calleeName(call) == "readFence" {
				ev.fenceDrops = append(ev.fenceDrops, call.Pos())
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "seq":
						ev.seqAdvs = append(ev.seqAdvs, lhs.Pos())
					case "epoch":
						if !rhsIsCall(s) {
							ev.adopts = append(ev.adopts, lhs.Pos())
						}
					}
				}
			}
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok && calleeName(call) == "Exec" {
					if id, ok := unparen(s.Lhs[0]).(*ast.Ident); ok {
						execVars[id.Name] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := unparen(s.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "seq" {
				ev.seqAdvs = append(ev.seqAdvs, s.Pos())
			}
		}
		return true
	})

	// Second sweep: returns of Exec-derived values, skipping Status-guarded
	// branches (an early return of a failed Exec is a refusal, not an ack).
	ast.Inspect(body, func(n ast.Node) bool {
		if n != nil && !own(n) && n != body {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			derived := false
			switch x := unparen(r).(type) {
			case *ast.CallExpr:
				derived = calleeName(x) == "Exec"
			case *ast.Ident:
				derived = execVars[x.Name]
			}
			if derived && !inRanges(guards, ret.Pos()) {
				ev.acks = append(ev.acks, ret.Pos())
			}
		}
		return true
	})

	reportRepl(p, &ev)
}

func reportRepl(p *Pass, ev *replEvents) {
	firstExec := first(ev.execs)
	firstFence := first(ev.fences)
	line := func(pos token.Pos) int { return p.Fset.Position(pos).Line }

	// Rule 1: ack before replication confirmed.
	if ev.confirm != token.NoPos {
		for _, ack := range ev.acks {
			if ack < ev.confirm && !(firstFence != token.NoPos && firstFence < ack) {
				p.Reportf(ack,
					"client acked before every active backup confirmed the write (replication at line %d); a machine loss here drops an acked write — replicate, then ack",
					line(ev.confirm))
			}
		}
	}

	// Rule 2: seq advanced and persisted before the op executed.
	if firstExec != token.NoPos {
		for _, per := range ev.persists {
			if per >= firstExec {
				continue
			}
			for _, adv := range ev.seqAdvs {
				if adv < per {
					p.Reportf(per,
						"sequence number persisted before the op executed (exec at line %d); a crash between them makes tail replay skip this op — exec, advance, then persist",
						line(firstExec))
					break
				}
			}
		}
	}

	// Rule 3: the read path must fence, before executing, and use the result.
	if ev.mutating != token.NoPos && firstExec != token.NoPos {
		switch {
		case firstFence == token.NoPos:
			p.Reportf(ev.mutating,
				"this function branches on op mutability but never calls readFence; a deposed primary that skips the fence serves stale reads")
		case firstFence > firstExec:
			p.Reportf(firstFence,
				"readFence runs after an op already executed (exec at line %d); fence before serving",
				line(firstExec))
		}
	}
	for _, pos := range ev.fenceDrops {
		p.Reportf(pos,
			"readFence result discarded; a failed fence must refuse the read, not fall through")
	}

	// Rule 4: an adopted epoch must be persisted in the same function.
	for _, adopt := range ev.adopts {
		persisted := false
		for _, per := range ev.persists {
			if per > adopt {
				persisted = true
				break
			}
		}
		if !persisted {
			p.Reportf(adopt,
				"adopted epoch is never persisted here; a warm reboot reloads the old epoch and the replica re-serves a fenced role — call persistSeq after adopting")
		}
	}
}

// statusGuardRanges collects the body ranges of if/switch statements
// whose condition inspects a .Status field: returns inside them are
// refusals of failed ops, not premature acks.
func statusGuardRanges(body *ast.BlockStmt) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if s.Cond != nil && mentionsStatus(s.Cond) {
				ranges = append(ranges, [2]token.Pos{s.Body.Pos(), s.Body.End()})
				if s.Else != nil {
					ranges = append(ranges, [2]token.Pos{s.Else.Pos(), s.Else.End()})
				}
			}
		case *ast.SwitchStmt:
			if s.Tag != nil && mentionsStatus(s.Tag) {
				ranges = append(ranges, [2]token.Pos{s.Body.Pos(), s.Body.End()})
			}
		}
		return true
	})
	return ranges
}

func mentionsStatus(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && strings.Contains(sel.Sel.Name, "Status") {
			found = true
		}
		return true
	})
	return found
}

func inRanges(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if pos >= r[0] && pos < r[1] {
			return true
		}
	}
	return false
}

func rhsIsCall(s *ast.AssignStmt) bool {
	return len(s.Rhs) == 1 && isCall(unparen(s.Rhs[0]))
}

func isCall(e ast.Expr) bool {
	_, ok := e.(*ast.CallExpr)
	return ok
}

func first(ps []token.Pos) token.Pos {
	if len(ps) == 0 {
		return token.NoPos
	}
	min := ps[0]
	for _, p := range ps[1:] {
		if p < min {
			min = p
		}
	}
	return min
}
