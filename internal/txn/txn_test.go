package txn

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rio/internal/fs"
	"rio/internal/machine"
)

func rioMachine(t *testing.T) *machine.Machine {
	t.Helper()
	pol := fs.DefaultPolicy(fs.PolicyRio)
	pol.Protect = true
	opt := machine.DefaultOptions(pol)
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sampleRecords() []Record {
	return []Record{
		{ID: 1, Ops: []Op{
			{Kind: OpMkdir, Path: "/t"},
			{Kind: OpWrite, Path: "/t/a", Off: 0, Data: []byte("alpha-content")},
		}},
		{ID: 2, Ops: []Op{
			{Kind: OpWrite, Path: "/t/b", Off: 4096, Data: bytes.Repeat([]byte{0x5a}, 1000)},
			{Kind: OpRename, Path: "/t/a", Path2: "/t/a2"},
		}},
		{ID: 3, Ops: []Op{
			{Kind: OpRemove, Path: "/t/b"},
		}},
	}
}

func encodeAll(recs []Record) []byte {
	var buf []byte
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	return buf
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRecords()
	got := ParseAll(encodeAll(want))
	if len(got) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		// nil vs empty Data both encode to length 0.
		for j := range want[i].Ops {
			if want[i].Ops[j].Data == nil {
				want[i].Ops[j].Data = got[i].Ops[j].Data
			}
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// A log truncated at any byte offset must parse to an exact prefix of
// the original records — a torn trailing frame is discarded, never
// mis-parsed into a record no one sealed.
func TestParseTornTailAtEveryOffset(t *testing.T) {
	want := sampleRecords()
	full := encodeAll(want)
	// Frame boundaries, for deciding how many complete records a
	// truncation retains.
	bounds := make([]int, 0, len(want)+1)
	n := 0
	bounds = append(bounds, 0)
	for i := range want {
		n = len(AppendRecord(make([]byte, 0, n), &want[i])) + bounds[i]
		bounds = append(bounds, n)
	}
	for cut := 0; cut <= len(full); cut++ {
		got := ParseAll(full[:cut])
		complete := 0
		for _, b := range bounds[1:] {
			if cut >= b {
				complete++
			}
		}
		if len(got) != complete {
			t.Fatalf("cut at %d: parsed %d records, want %d complete frames",
				cut, len(got), complete)
		}
		for i := range got {
			if got[i].ID != want[i].ID || len(got[i].Ops) != len(want[i].Ops) {
				t.Fatalf("cut at %d: record %d mangled: %+v", cut, i, got[i])
			}
		}
	}
}

// A single flipped bit anywhere in a frame must fail that frame's
// checksum: the parse never surfaces altered content as a valid record.
func TestParseDetectsCorruption(t *testing.T) {
	want := sampleRecords()
	full := encodeAll(want)
	for off := 0; off < len(full); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x01
		for i, rec := range ParseAll(mut) {
			// Any record the parse does return must be byte-identical to
			// an original: the flip either killed its frame or landed in
			// a later one.
			if i >= len(want) || !reflect.DeepEqual(rec.Ops, ParseAll(full)[i].Ops) || rec.ID != want[i].ID {
				t.Fatalf("flip at %d: surfaced altered record %d: %+v", off, i, rec)
			}
		}
	}
}

func readBack(t *testing.T, fsys *fs.FS, path string) []byte {
	t.Helper()
	st, err := fsys.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	buf := make([]byte, st.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return buf
}

// checkFinal asserts the state sampleRecords converges to: /t/a renamed
// to /t/a2 with its content, /t/b removed.
func checkFinal(t *testing.T, fsys *fs.FS) {
	t.Helper()
	if got := readBack(t, fsys, "/t/a2"); !bytes.Equal(got, []byte("alpha-content")) {
		t.Fatalf("/t/a2 content %q", got)
	}
	if _, err := fsys.Stat("/t/a"); err != fs.ErrNotFound {
		t.Fatalf("/t/a should be renamed away: %v", err)
	}
	if _, err := fsys.Stat("/t/b"); err != fs.ErrNotFound {
		t.Fatalf("/t/b should be removed: %v", err)
	}
}

func TestApplyIdempotent(t *testing.T) {
	m := rioMachine(t)
	l := NewLog(m.FS)
	recs := sampleRecords()
	for round := 0; round < 3; round++ {
		for i := range recs {
			if err := l.Apply(&recs[i]); err != nil {
				t.Fatalf("round %d record %d: %v", round, i, err)
			}
		}
		checkFinal(t, m.FS)
	}
	// Partial re-application converges too: replay just the first
	// record, then the rest.
	if err := l.Apply(&recs[0]); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := l.Apply(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	checkFinal(t, m.FS)
}

func TestPublishRecoverErase(t *testing.T) {
	m := rioMachine(t)
	l := NewLog(m.FS)
	if err := l.Publish(sampleRecords()); err != nil {
		t.Fatal(err)
	}
	st, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 3 || st.Applied != 3 {
		t.Fatalf("stats %+v", st)
	}
	checkFinal(t, m.FS)
	if _, err := m.FS.Stat(LogPath); err != fs.ErrNotFound {
		t.Fatalf("log not erased: %v", err)
	}
	// Recovery after erase is a no-op.
	st, err = l.Recover()
	if err != nil || st.Records != 0 {
		t.Fatalf("second recover: %+v, %v", st, err)
	}
}

// A log torn at any byte offset (crash mid-publish) must recover to a
// consistent prefix of the group, and recovery must never error.
func TestRecoverTornLogAtEveryOffset(t *testing.T) {
	recs := sampleRecords()
	full := encodeAll(recs)
	for cut := 0; cut <= len(full); cut++ {
		m := rioMachine(t)
		l := NewLog(m.FS)
		if err := m.FS.Mkdir(Dir); err != nil {
			t.Fatal(err)
		}
		f, err := m.FS.Create(LogPath)
		if err != nil {
			t.Fatal(err)
		}
		if cut > 0 {
			if _, err := f.WriteAt(full[:cut], 0); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
		st, err := l.Recover()
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if st.Applied != st.Records {
			t.Fatalf("cut at %d: applied %d of %d", cut, st.Applied, st.Records)
		}
		if cut == len(full) {
			checkFinal(t, m.FS)
		}
		if _, err := m.FS.Stat(LogPath); err != fs.ErrNotFound {
			t.Fatalf("cut at %d: log not erased", cut)
		}
	}
}

// Recovery interrupted before every step and then restarted from
// scratch must converge to the same final state — the crash-at-every-
// step idempotency test, mirroring warmreboot's restart protocol.
func TestRecoverCrashAtEveryStep(t *testing.T) {
	for step := 1; step <= 8; step++ {
		m := rioMachine(t)
		l := NewLog(m.FS)
		if err := l.Publish(sampleRecords()); err != nil {
			t.Fatal(err)
		}
		_, err := l.RecoverOpts(Options{CrashAtStep: step})
		if err != nil && err != ErrInterrupted {
			t.Fatalf("step %d: %v", step, err)
		}
		interrupted := err == ErrInterrupted
		// Restart: the full recovery must complete and converge.
		if _, err := l.Recover(); err != nil {
			t.Fatalf("step %d: restarted recovery: %v", step, err)
		}
		checkFinal(t, m.FS)
		if _, err := m.FS.Stat(LogPath); err != fs.ErrNotFound {
			t.Fatalf("step %d: log not erased", step)
		}
		if step > 8 && interrupted {
			t.Fatalf("step %d still interrupts; widen the loop", step)
		}
	}
}

// If a crash costs the log file its metadata, warm reboot salvages the
// orphaned pages into /lost+found; recovery must find the frames there,
// roll them forward, and consume the salvage file.
func TestRecoverFromSalvage(t *testing.T) {
	m := rioMachine(t)
	l := NewLog(m.FS)
	if err := m.FS.Mkdir("/lost+found"); err != nil {
		t.Fatal(err)
	}
	f, err := m.FS.Create("/lost+found/ino-42")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(encodeAll(sampleRecords()), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// A non-log salvage file must be left alone.
	g, err := m.FS.Create("/lost+found/ino-7")
	if err != nil {
		t.Fatal(err)
	}
	g.WriteAt([]byte("ordinary orphaned user data"), 0)
	g.Close()

	st, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.SalvageLogs != 1 || st.Applied != 3 {
		t.Fatalf("stats %+v", st)
	}
	checkFinal(t, m.FS)
	if _, err := m.FS.Stat("/lost+found/ino-42"); err != fs.ErrNotFound {
		t.Fatal("consumed salvage log not removed")
	}
	if got := readBack(t, m.FS, "/lost+found/ino-7"); string(got) != "ordinary orphaned user data" {
		t.Fatal("non-log salvage file disturbed")
	}
}

// Oversize declared lengths must be rejected before allocation.
func TestParseRejectsOversize(t *testing.T) {
	rec := Record{ID: 9, Ops: []Op{{Kind: OpWrite, Path: "/x", Data: []byte("d")}}}
	buf := AppendRecord(nil, &rec)
	// nops sits after magic(8)+cksum(8)+id(8) = offset 24.
	mut := append([]byte(nil), buf...)
	mut[24], mut[25], mut[26], mut[27] = 0xff, 0xff, 0xff, 0xff
	if got := ParseAll(mut); len(got) != 0 {
		t.Fatalf("oversize nops parsed: %+v", got)
	}
}

func TestCanonicalPath(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"/a", "/a", true},
		{"/a/b/c", "/a/b/c", true},
		{"a", "/a", true},
		{"//a", "/a", true},
		{"/a/", "/a", true},
		{"//a/b//", "/a/b", true},
		{"/a//b", "", false}, // inner empty component: the fs refuses it too
		{".txn/log", "/.txn/log", true},
		{"/", "/", true},
		{"///", "/", true},
		{"", "", false},
		{"/.", "", false},
		{"/..", "", false},
		{"/a/./b", "", false},
		{"/a/../b", "", false},
		{"..", "", false},
	}
	for _, c := range cases {
		got, ok := CanonicalPath(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CanonicalPath(%q) = (%q, %v), want (%q, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestEncodedSizeMatchesAppendRecord(t *testing.T) {
	for i, rec := range sampleRecords() {
		if got, want := rec.EncodedSize(), len(AppendRecord(nil, &rec)); got != want {
			t.Errorf("record %d: EncodedSize = %d, encoded length = %d", i, got, want)
		}
	}
}

// Publish must refuse any record parseRecord would reject: such a frame
// applies at commit time but vanishes from crash recovery as a "torn
// tail" — so it can never be allowed into the log.
func TestPublishRejectsInvalidRecords(t *testing.T) {
	m := rioMachine(t)
	l := NewLog(m.FS)
	longPath := "/" + strings.Repeat("x", MaxPathLen)
	bad := []struct {
		name string
		rec  Record
	}{
		{"too many ops", Record{ID: 1, Ops: make([]Op, MaxOps+1)}},
		{"unknown kind", Record{ID: 1, Ops: []Op{{Kind: 0, Path: "/a"}}}},
		{"oversize data", Record{ID: 1, Ops: []Op{{Kind: OpWrite, Path: "/a", Data: make([]byte, MaxDataLen+1)}}}},
		{"oversize path", Record{ID: 1, Ops: []Op{{Kind: OpMkdir, Path: longPath}}}},
		{"non-canonical path", Record{ID: 1, Ops: []Op{{Kind: OpMkdir, Path: "a/b"}}}},
		{"doubled slash", Record{ID: 1, Ops: []Op{{Kind: OpMkdir, Path: "/a//b"}}}},
		{"dot component", Record{ID: 1, Ops: []Op{{Kind: OpMkdir, Path: "/a/../b"}}}},
		{"negative offset", Record{ID: 1, Ops: []Op{{Kind: OpWrite, Path: "/a", Off: -1}}}},
		{"path2 on write", Record{ID: 1, Ops: []Op{{Kind: OpWrite, Path: "/a", Path2: "/b"}}}},
		{"data on remove", Record{ID: 1, Ops: []Op{{Kind: OpRemove, Path: "/a", Data: []byte("x")}}}},
		{"non-canonical rename dst", Record{ID: 1, Ops: []Op{{Kind: OpRename, Path: "/a", Path2: "b//c"}}}},
	}
	for _, c := range bad {
		if err := l.Publish([]Record{c.rec}); err == nil {
			t.Errorf("%s: Publish accepted an unrecoverable record", c.name)
		}
		if _, err := m.FS.Stat(LogPath); err != fs.ErrNotFound {
			t.Fatalf("%s: log exists after refused publish (stat err %v)", c.name, err)
		}
	}
	// The group size is bounded by the log file's capacity.
	big := Record{ID: 9}
	for i := 0; i < 8; i++ {
		big.Ops = append(big.Ops, Op{Kind: OpWrite, Path: fmt.Sprintf("/big/%d", i), Data: make([]byte, MaxDataLen)})
	}
	group := make([]Record, 0, 4)
	for len(group) < 4 {
		r := big
		r.ID = uint64(len(group) + 1)
		group = append(group, r)
	}
	if err := l.Publish(group); err == nil {
		t.Fatalf("Publish accepted a %d-byte group over MaxPublishBytes=%d",
			4*big.EncodedSize(), MaxPublishBytes)
	}
	if _, err := m.FS.Stat(LogPath); err != fs.ErrNotFound {
		t.Fatalf("log exists after refused oversize group (stat err %v)", err)
	}
}

// A record the tree's shape rejects must fail before any of its ops
// run: Apply's precheck refuses it atomically with a CheckError.
func TestApplyPrecheckAtomic(t *testing.T) {
	m := rioMachine(t)
	l := NewLog(m.FS)
	// /d is non-empty, so the record's second op can never succeed.
	if err := l.Apply(&Record{ID: 1, Ops: []Op{
		{Kind: OpWrite, Path: "/d/keep", Data: []byte("x")},
	}}); err != nil {
		t.Fatal(err)
	}
	err := l.Apply(&Record{ID: 2, Ops: []Op{
		{Kind: OpWrite, Path: "/fresh", Data: []byte("partial")},
		{Kind: OpRemove, Path: "/d"},
	}})
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("Apply = %v, want *CheckError", err)
	}
	if ce.RecID != 2 || ce.OpIndex != 1 || !errors.Is(ce, fs.ErrNotEmpty) {
		t.Fatalf("CheckError = %+v (err %v), want rec 2 op 1 ErrNotEmpty", ce, ce.Err)
	}
	// Atomic: the first op must not have run.
	if _, err := m.FS.Stat("/fresh"); err != fs.ErrNotFound {
		t.Fatalf("refused record leaked its first op: stat /fresh = %v", err)
	}
	if got := readBack(t, m.FS, "/d/keep"); string(got) != "x" {
		t.Fatalf("/d/keep = %q, want %q", got, "x")
	}
}

// Recovery must not let one deterministically unappliable record wedge
// the log forever: it is quarantined (never replayed, never salvaged)
// and the rest of the log rolls forward.
func TestRecoverQuarantinesUnappliable(t *testing.T) {
	m := rioMachine(t)
	l := NewLog(m.FS)
	good := Record{ID: 1, Ops: []Op{{Kind: OpWrite, Path: "/d/f", Data: []byte("applied")}}}
	bad := Record{ID: 2, Ops: []Op{{Kind: OpRemove, Path: "/d"}}} // /d non-empty once good applies
	if err := l.Publish([]Record{good, bad}); err != nil {
		t.Fatal(err)
	}
	st, err := l.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if st.Records != 2 || st.Applied != 1 || st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want Records=2 Applied=1 Quarantined=1", st)
	}
	if got := readBack(t, m.FS, "/d/f"); string(got) != "applied" {
		t.Fatalf("/d/f = %q, want %q", got, "applied")
	}
	if _, err := m.FS.Stat(LogPath); err != fs.ErrNotFound {
		t.Fatalf("log survives recovery: stat err %v", err)
	}
	qst, err := m.FS.Stat(QuarantinePath)
	if err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if qst.Size <= 8 {
		t.Fatalf("quarantine file too small: %d bytes", qst.Size)
	}
	// The quarantine file must never parse as a log: its leading magic
	// differs, so ParseAll sees a torn head and yields nothing.
	qdata := readBack(t, m.FS, QuarantinePath)
	if recs := ParseAll(qdata); len(recs) != 0 {
		t.Fatalf("quarantine file parsed as %d log records", len(recs))
	}
	// Nor may salvage resurrect it: plant its bytes in /lost+found and
	// check recovery both ignores and preserves the file.
	if err := m.FS.Mkdir("/lost+found"); err != nil && err != fs.ErrExists {
		t.Fatal(err)
	}
	f, err := m.FS.Create("/lost+found/ino-42")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(qdata, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := l.Recover()
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if st2.Records != 0 || st2.SalvageLogs != 0 || st2.Quarantined != 0 {
		t.Fatalf("second recovery stats = %+v, want all zero", st2)
	}
	if _, err := m.FS.Stat("/lost+found/ino-42"); err != nil {
		t.Fatalf("salvage sweep disturbed the quarantined bytes: %v", err)
	}
}

// An unreadable log must abort recovery, never be treated as empty and
// erased — erasing it would silently discard published records.
func TestRecoverRefusesUnreadableLog(t *testing.T) {
	t.Run("log is a directory", func(t *testing.T) {
		m := rioMachine(t)
		l := NewLog(m.FS)
		if err := m.FS.Mkdir(Dir); err != nil {
			t.Fatal(err)
		}
		if err := m.FS.Mkdir(LogPath); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Recover(); err == nil {
			t.Fatal("Recover succeeded over an unreadable log")
		}
		if st, err := m.FS.Stat(LogPath); err != nil || !st.IsDir {
			t.Fatalf("unreadable log was disturbed: stat %v %+v", err, st)
		}
	})
	t.Run("log over size cap", func(t *testing.T) {
		m := rioMachine(t)
		l := NewLog(m.FS)
		if err := l.Publish(sampleRecords()); err != nil {
			t.Fatal(err)
		}
		old := maxLogBytes
		maxLogBytes = 4
		defer func() { maxLogBytes = old }()
		if _, err := l.Recover(); err == nil {
			t.Fatal("Recover succeeded over an implausibly large log")
		}
		if _, err := m.FS.Stat(LogPath); err != nil {
			t.Fatalf("oversize log was erased: stat err %v", err)
		}
		maxLogBytes = old
		st, err := l.Recover()
		if err != nil {
			t.Fatalf("Recover after restoring cap: %v", err)
		}
		if st.Applied != len(sampleRecords()) {
			t.Fatalf("Applied = %d, want %d", st.Applied, len(sampleRecords()))
		}
		checkFinal(t, m.FS)
	})
}

// A crash probe reporting true must keep recovery from quarantining:
// crash fallout can look exactly like a deterministic refusal.
func TestRecoverCrashProbeSuppressesQuarantine(t *testing.T) {
	m := rioMachine(t)
	l := NewLog(m.FS)
	if err := l.Apply(&Record{ID: 1, Ops: []Op{{Kind: OpWrite, Path: "/d/f", Data: []byte("x")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Publish([]Record{{ID: 2, Ops: []Op{{Kind: OpRemove, Path: "/d"}}}}); err != nil {
		t.Fatal(err)
	}
	st, err := l.RecoverOpts(Options{Crashed: func() bool { return true }})
	if err == nil {
		t.Fatal("Recover succeeded though the crash probe fired")
	}
	if st.Quarantined != 0 {
		t.Fatalf("quarantined %d records under a reported crash", st.Quarantined)
	}
	if _, err := m.FS.Stat(LogPath); err != nil {
		t.Fatalf("log erased under a reported crash: stat err %v", err)
	}
}
