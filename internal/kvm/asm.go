package kvm

import "fmt"

// Asm is a small builder-style assembler for kernel procedures. It handles
// forward label fixups and records per-procedure metadata (entry point,
// prologue length) that the fault injector needs.
//
// Usage:
//
//	a := NewAsm()
//	a.Proc("bcopy")
//	a.MovI(4, 0)          // i = 0
//	a.EndProlog()
//	loop := a.Here()
//	...
//	a.Bne(4, 3, loop)
//	a.Ret()
//	text := a.Assemble()
type Asm struct {
	words  []uint64
	procs  []Proc
	cur    *Proc
	fixups []fixup
	labels map[string]int
	err    error
}

type fixup struct {
	at     int    // instruction index whose imm needs patching
	target string // label name
	call   bool   // absolute (call) vs relative (branch/jmp)
}

// Proc describes one assembled procedure.
type Proc struct {
	Name   string
	Entry  int // absolute instruction index of the entry point
	End    int // one past the last instruction
	Prolog int // number of prologue (initialisation) instructions
}

// Len returns the procedure length in instructions.
func (p Proc) Len() int { return p.End - p.Entry }

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

// Proc begins a new procedure. It implicitly ends the previous one.
func (a *Asm) Proc(name string) {
	a.endProc()
	a.procs = append(a.procs, Proc{Name: name, Entry: len(a.words)})
	a.cur = &a.procs[len(a.procs)-1]
	a.labels[name] = a.cur.Entry
}

func (a *Asm) endProc() {
	if a.cur != nil {
		a.cur.End = len(a.words)
		if a.cur.Prolog == 0 {
			a.cur.Prolog = min(2, a.cur.Len()) // default: first 2 instructions
		}
		a.cur = nil
	}
}

// EndProlog marks the end of the current procedure's initialisation
// prologue (the instructions the "initialization" fault model deletes).
func (a *Asm) EndProlog() {
	if a.cur == nil {
		a.fail("EndProlog outside procedure")
		return
	}
	a.cur.Prolog = len(a.words) - a.cur.Entry
}

// Here returns the address of the next instruction, for backward branches.
func (a *Asm) Here() int { return len(a.words) }

// Label binds name to the next instruction address (for forward branches).
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.fail("duplicate label %q", name)
	}
	a.labels[name] = len(a.words)
}

func (a *Asm) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("asm: "+format, args...)
	}
}

func (a *Asm) emit(i Instr) {
	if a.cur == nil {
		a.fail("instruction outside procedure")
		return
	}
	a.words = append(a.words, i.Encode())
}

// --- instruction emitters ---

func (a *Asm) Nop()                   { a.emit(Instr{Op: OpNop}) }
func (a *Asm) MovI(rd int, imm int32) { a.emit(Instr{Op: OpMovI, Rd: uint8(rd), Imm: imm}) }
func (a *Asm) MovHi(rd int, imm int32) {
	a.emit(Instr{Op: OpMovHi, Rd: uint8(rd), Imm: imm})
}
func (a *Asm) Mov(rd, rs int) { a.emit(Instr{Op: OpMov, Rd: uint8(rd), Rs1: uint8(rs)}) }
func (a *Asm) Add(rd, r1, r2 int) {
	a.emit(Instr{Op: OpAdd, Rd: uint8(rd), Rs1: uint8(r1), Rs2: uint8(r2)})
}
func (a *Asm) Sub(rd, r1, r2 int) {
	a.emit(Instr{Op: OpSub, Rd: uint8(rd), Rs1: uint8(r1), Rs2: uint8(r2)})
}
func (a *Asm) AddI(rd, r1 int, imm int32) {
	a.emit(Instr{Op: OpAddI, Rd: uint8(rd), Rs1: uint8(r1), Imm: imm})
}
func (a *Asm) And(rd, r1, r2 int) {
	a.emit(Instr{Op: OpAnd, Rd: uint8(rd), Rs1: uint8(r1), Rs2: uint8(r2)})
}
func (a *Asm) Or(rd, r1, r2 int) {
	a.emit(Instr{Op: OpOr, Rd: uint8(rd), Rs1: uint8(r1), Rs2: uint8(r2)})
}
func (a *Asm) Xor(rd, r1, r2 int) {
	a.emit(Instr{Op: OpXor, Rd: uint8(rd), Rs1: uint8(r1), Rs2: uint8(r2)})
}
func (a *Asm) ShlI(rd, r1 int, imm int32) {
	a.emit(Instr{Op: OpShlI, Rd: uint8(rd), Rs1: uint8(r1), Imm: imm})
}
func (a *Asm) ShrI(rd, r1 int, imm int32) {
	a.emit(Instr{Op: OpShrI, Rd: uint8(rd), Rs1: uint8(r1), Imm: imm})
}
func (a *Asm) Ld(rd, base int, off int32) {
	a.emit(Instr{Op: OpLd, Rd: uint8(rd), Rs1: uint8(base), Imm: off})
}
func (a *Asm) St(base int, off int32, rs int) {
	a.emit(Instr{Op: OpSt, Rs1: uint8(base), Rs2: uint8(rs), Imm: off})
}
func (a *Asm) LdB(rd, base int, off int32) {
	a.emit(Instr{Op: OpLdB, Rd: uint8(rd), Rs1: uint8(base), Imm: off})
}
func (a *Asm) StB(base int, off int32, rs int) {
	a.emit(Instr{Op: OpStB, Rs1: uint8(base), Rs2: uint8(rs), Imm: off})
}
func (a *Asm) Push(rs int) { a.emit(Instr{Op: OpPush, Rs1: uint8(rs)}) }
func (a *Asm) Pop(rd int)  { a.emit(Instr{Op: OpPop, Rd: uint8(rd)}) }
func (a *Asm) Intr(num int32) {
	a.emit(Instr{Op: OpIntr, Imm: num})
}
func (a *Asm) Assert(r1, r2 int) {
	a.emit(Instr{Op: OpAssert, Rs1: uint8(r1), Rs2: uint8(r2)})
}
func (a *Asm) Ret()  { a.emit(Instr{Op: OpRet}) }
func (a *Asm) Halt() { a.emit(Instr{Op: OpHalt}) }

// branch emits a conditional branch to an absolute target address (an int
// from Here) — the encoded imm is relative.
func (a *Asm) branch(op Op, r1, r2 int, target int) {
	rel := int32(target - (len(a.words) + 1))
	a.emit(Instr{Op: op, Rs1: uint8(r1), Rs2: uint8(r2), Imm: rel})
}

func (a *Asm) Beq(r1, r2, target int) { a.branch(OpBeq, r1, r2, target) }
func (a *Asm) Bne(r1, r2, target int) { a.branch(OpBne, r1, r2, target) }
func (a *Asm) Blt(r1, r2, target int) { a.branch(OpBlt, r1, r2, target) }
func (a *Asm) Bge(r1, r2, target int) { a.branch(OpBge, r1, r2, target) }
func (a *Asm) Ble(r1, r2, target int) { a.branch(OpBle, r1, r2, target) }
func (a *Asm) Bgt(r1, r2, target int) { a.branch(OpBgt, r1, r2, target) }

// BeqL etc. branch to a (possibly forward) label.
func (a *Asm) branchL(op Op, r1, r2 int, label string) {
	a.fixups = append(a.fixups, fixup{at: len(a.words), target: label})
	a.emit(Instr{Op: op, Rs1: uint8(r1), Rs2: uint8(r2)})
}

func (a *Asm) BeqL(r1, r2 int, label string) { a.branchL(OpBeq, r1, r2, label) }
func (a *Asm) BneL(r1, r2 int, label string) { a.branchL(OpBne, r1, r2, label) }
func (a *Asm) BltL(r1, r2 int, label string) { a.branchL(OpBlt, r1, r2, label) }
func (a *Asm) BgeL(r1, r2 int, label string) { a.branchL(OpBge, r1, r2, label) }
func (a *Asm) BleL(r1, r2 int, label string) { a.branchL(OpBle, r1, r2, label) }
func (a *Asm) BgtL(r1, r2 int, label string) { a.branchL(OpBgt, r1, r2, label) }

// Jmp jumps to an absolute address obtained from Here (backward jumps).
func (a *Asm) Jmp(target int) {
	rel := int32(target - (len(a.words) + 1))
	a.emit(Instr{Op: OpJmp, Imm: rel})
}

// JmpL jumps to a label.
func (a *Asm) JmpL(label string) {
	a.fixups = append(a.fixups, fixup{at: len(a.words), target: label})
	a.emit(Instr{Op: OpJmp})
}

// Call emits a call to a named procedure (fixed up at assembly).
func (a *Asm) Call(proc string) {
	a.fixups = append(a.fixups, fixup{at: len(a.words), target: proc, call: true})
	a.emit(Instr{Op: OpCall})
}

// Assemble finalises the text: resolves fixups and returns the Text. It
// returns an error for unresolved labels or emissions outside procedures.
func (a *Asm) Assemble() (*Text, error) {
	a.endProc()
	if a.err != nil {
		return nil, a.err
	}
	for _, f := range a.fixups {
		target, ok := a.labels[f.target]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.target)
		}
		in := Decode(a.words[f.at])
		if f.call {
			in.Imm = int32(target)
		} else {
			in.Imm = int32(target - (f.at + 1))
		}
		a.words[f.at] = in.Encode()
	}
	t := &Text{words: a.words, procs: make(map[string]Proc, len(a.procs))}
	for _, p := range a.procs {
		t.procs[p.Name] = p
	}
	t.procList = a.procs
	return t, nil
}

// MustAssemble is Assemble panicking on error; for the kernel's built-in
// text, which is validated by tests.
func (a *Asm) MustAssemble() *Text {
	t, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
