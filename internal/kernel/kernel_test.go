package kernel

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"rio/internal/kvm"
	"rio/internal/mem"
	"rio/internal/mmu"
)

func boot(t *testing.T) *Kernel {
	t.Helper()
	m := mem.New(128 * mem.PageSize)
	u := mmu.New(m)
	return New(m, u, BuildText())
}

func bootFast(t *testing.T) *Kernel {
	k := boot(t)
	k.FastPath = true
	return k
}

func TestBuildTextProcedures(t *testing.T) {
	text := BuildText()
	for _, name := range []string{"bcopy", "bzero", "cksum", "fill", "memcmp", "write_block", "read_block"} {
		p, ok := text.Proc(name)
		if !ok {
			t.Fatalf("missing procedure %q", name)
		}
		if p.Len() < 3 {
			t.Fatalf("%q suspiciously short (%d instrs)", name, p.Len())
		}
		if p.Prolog <= 0 || p.Prolog >= p.Len() {
			t.Fatalf("%q prolog = %d of %d", name, p.Prolog, p.Len())
		}
	}
}

func TestBCopyBothModes(t *testing.T) {
	for _, fast := range []bool{false, true} {
		k := boot(t)
		k.FastPath = fast
		msg := "hello rio file cache, surviving crashes since 1996"
		src := k.StageIn([]byte(msg))
		dst := HeapBase + 512 // somewhere writable
		if err := k.BCopy(dst, src, len(msg)); err != nil {
			t.Fatalf("fast=%v: %v", fast, err)
		}
		got := make([]byte, len(msg))
		k.Mem.ReadAt(HeapPhys(dst), got)
		if string(got) != msg {
			t.Fatalf("fast=%v: got %q", fast, got)
		}
	}
}

func TestBCopyUnalignedAndAligned(t *testing.T) {
	k := boot(t)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	src := k.StageIn(data)
	for _, dstOff := range []uint64{0, 1, 3, 8} {
		dst := HeapBase + 2048 + dstOff
		if err := k.BCopy(dst, src, len(data)); err != nil {
			t.Fatalf("off %d: %v", dstOff, err)
		}
		got := make([]byte, len(data))
		k.Mem.ReadAt(HeapPhys(dst), got)
		if !bytes.Equal(got, data) {
			t.Fatalf("off %d: copy mismatch", dstOff)
		}
	}
}

func TestBCopyKSEGDestination(t *testing.T) {
	k := boot(t)
	f := k.AllocFrame(FrameUBC)
	if f < 0 {
		t.Fatal("no frames")
	}
	dst := mmu.PhysToKSEG(mem.FrameBase(f))
	src := k.StageIn([]byte("ubc data via physical addressing"))
	if err := k.BCopy(dst, src, 32); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	k.Mem.ReadAt(mem.FrameBase(f), got)
	if string(got) != "ubc data via physical addressing" {
		t.Fatalf("got %q", got)
	}
}

func TestBZero(t *testing.T) {
	for _, fast := range []bool{false, true} {
		k := boot(t)
		k.FastPath = fast
		k.Mem.WriteAt(HeapPhys(HeapBase+100), []byte{1, 2, 3, 4, 5})
		if err := k.BZero(HeapBase+100, 5); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 5)
		k.Mem.ReadAt(HeapPhys(HeapBase+100), got)
		if !bytes.Equal(got, make([]byte, 5)) {
			t.Fatalf("fast=%v: not zeroed: %v", fast, got)
		}
	}
}

func TestCksumModesAgree(t *testing.T) {
	slow := boot(t)
	fast := bootFast(t)
	data := []byte("checksum consistency across execution modes")
	a1 := slow.StageIn(data)
	a2 := fast.StageIn(data)
	c1, err1 := slow.Cksum(a1, len(data))
	c2, err2 := fast.Cksum(a2, len(data))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if c1 != c2 {
		t.Fatalf("slow %#x != fast %#x", c1, c2)
	}
	if c1 != CksumBytes(data) {
		t.Fatalf("reference %#x != vm %#x", CksumBytes(data), c1)
	}
}

func TestCksumDetectsChange(t *testing.T) {
	a := CksumBytes([]byte("aaaa"))
	b := CksumBytes([]byte("aaab"))
	if a == b {
		t.Fatal("checksum collision on single-byte change")
	}
}

func TestFillModesAgree(t *testing.T) {
	slow := boot(t)
	fast := bootFast(t)
	if err := slow.Fill(HeapBase+256, 200, 12345); err != nil {
		t.Fatal(err)
	}
	if err := fast.Fill(HeapBase+256, 200, 12345); err != nil {
		t.Fatal(err)
	}
	a := make([]byte, 200)
	b := make([]byte, 200)
	slow.Mem.ReadAt(HeapPhys(HeapBase+256), a)
	fast.Mem.ReadAt(HeapPhys(HeapBase+256), b)
	if !bytes.Equal(a, b) {
		t.Fatal("fill modes disagree")
	}
	if !bytes.Equal(a, FillBytes(200, 12345)) {
		t.Fatal("reference FillBytes disagrees with vm")
	}
}

func TestFillBytesProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)
		if seed == 0 {
			seed = 1
		}
		a := FillBytes(n, seed)
		b := FillBytes(n, seed)
		return bytes.Equal(a, b) && len(a) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemcmp(t *testing.T) {
	for _, fast := range []bool{false, true} {
		k := boot(t)
		k.FastPath = fast
		k.Mem.WriteAt(HeapPhys(HeapBase+100), []byte("abcdef"))
		k.Mem.WriteAt(HeapPhys(HeapBase+200), []byte("abcdef"))
		eq, err := k.Memcmp(HeapBase+100, HeapBase+200, 6)
		if err != nil || !eq {
			t.Fatalf("fast=%v: equal ranges: %v %v", fast, eq, err)
		}
		k.Mem.SetByte(HeapPhys(HeapBase+203), 'X')
		eq, err = k.Memcmp(HeapBase+100, HeapBase+200, 6)
		if err != nil || eq {
			t.Fatalf("fast=%v: unequal ranges reported equal", fast)
		}
	}
}

func TestWriteAndReadBlock(t *testing.T) {
	for _, fast := range []bool{false, true} {
		k := boot(t)
		k.FastPath = fast
		f := k.AllocFrame(FrameUBC)
		data := mmu.PhysToKSEG(mem.FrameBase(f))
		payload := []byte("block payload through the sanctioned path")
		src := k.StageIn(payload)
		lock := k.NewLockID()

		hdr, err := k.WriteBlockArgs(data, len(payload), src, 64, lock)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.WriteBlock(hdr); err != nil {
			t.Fatalf("fast=%v: %v", fast, err)
		}
		k.FreeBufHdr(hdr)

		got := make([]byte, len(payload))
		k.Mem.ReadAt(mem.FrameBase(f)+64, got)
		if !bytes.Equal(got, payload) {
			t.Fatalf("fast=%v: write_block mismatch: %q", fast, got)
		}

		// Read it back through read_block into staging.
		k.StageIn(make([]byte, len(payload))) // clear staging
		hdr, err = k.WriteBlockArgs(data, len(payload), StagingBase, 64, lock)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.ReadBlock(hdr); err != nil {
			t.Fatal(err)
		}
		k.FreeBufHdr(hdr)
		if !bytes.Equal(k.StageOut(len(payload)), payload) {
			t.Fatalf("fast=%v: read_block mismatch", fast)
		}
		// Lock must be free afterwards.
		if k.Locks.Held(lock) {
			t.Fatal("buffer lock leaked")
		}
	}
}

func TestWriteBlockCorruptHeaderPanics(t *testing.T) {
	k := boot(t)
	f := k.AllocFrame(FrameUBC)
	src := k.StageIn([]byte("x"))
	hdr, err := k.WriteBlockArgs(mmu.PhysToKSEG(mem.FrameBase(f)), 1, src, 0, k.NewLockID())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the header magic, as a heap bit-flip fault would.
	k.Mem.FlipBit(HeapPhys(hdr), 2)
	err = k.WriteBlock(hdr)
	if err == nil {
		t.Fatal("corrupt header accepted")
	}
	c := k.Crashed()
	if c == nil || c.Kind != CrashPanic {
		t.Fatalf("crash = %v", c)
	}
}

func TestWriteBlockToProtectedFrameTraps(t *testing.T) {
	k := boot(t)
	k.MMU.EnforceProtection = true
	k.MMU.MapAllThroughTLB = true
	f := k.AllocFrame(FrameUBC)
	k.MMU.SetFrameProtection(f, true)
	src := k.StageIn([]byte("denied"))
	hdr, err := k.WriteBlockArgs(mmu.PhysToKSEG(mem.FrameBase(f)), 6, src, 0, k.NewLockID())
	if err != nil {
		t.Fatal(err)
	}
	err = k.WriteBlock(hdr)
	if err == nil {
		t.Fatal("store to protected frame succeeded")
	}
	if c := k.Crashed(); c == nil || c.Kind != CrashProtection {
		t.Fatalf("crash = %v", c)
	}
}

func TestOperationsAfterCrashFail(t *testing.T) {
	k := boot(t)
	k.Panic("test crash")
	if err := k.BCopy(HeapBase, StagingBase, 8); err != ErrCrashed {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if _, err := k.Cksum(HeapBase, 8); err != ErrCrashed {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicIdempotent(t *testing.T) {
	k := boot(t)
	c1 := k.Panic("first")
	c2 := k.Panic("second")
	if c1 != c2 || !strings.Contains(c1.Reason, "first") {
		t.Fatal("first crash did not win")
	}
}

func TestFrameAllocation(t *testing.T) {
	k := boot(t)
	total := k.FreeFrameCount()
	f1 := k.AllocFrame(FrameUBC)
	f2 := k.AllocFrame(FrameMeta)
	if f1 < 0 || f2 < 0 || f1 == f2 {
		t.Fatalf("frames %d %d", f1, f2)
	}
	if k.FreeFrameCount() != total-2 {
		t.Fatal("count wrong")
	}
	if got := k.FramesOf(FrameUBC); len(got) != 1 || got[0] != f1 {
		t.Fatalf("FramesOf = %v", got)
	}
	k.FreeFrame(f1)
	if k.FreeFrameCount() != total-1 {
		t.Fatal("free did not return frame")
	}
}

func TestFramePoolExhaustion(t *testing.T) {
	k := boot(t)
	for k.AllocFrame(FrameUBC) >= 0 {
	}
	if k.AllocFrame(FrameUBC) != -1 {
		t.Fatal("expected exhaustion")
	}
}

func TestMapDyn(t *testing.T) {
	k := boot(t)
	f := k.AllocFrame(FrameMeta)
	va := k.MapDyn(f, true)
	if trap := k.MMU.Store64(va+16, 0x77); trap != nil {
		t.Fatalf("store through dyn mapping: %v", trap)
	}
	if k.Mem.Word64(mem.FrameBase(f)+16) != 0x77 {
		t.Fatal("dyn mapping points at wrong frame")
	}
	va2 := k.MapDyn(k.AllocFrame(FrameMeta), true)
	if va2 == va {
		t.Fatal("duplicate dyn vaddr")
	}
}

func TestStaging(t *testing.T) {
	k := boot(t)
	data := []byte("staged payload")
	addr := k.StageIn(data)
	if addr != StagingBase {
		t.Fatalf("addr = %#x", addr)
	}
	if got := k.StageOut(len(data)); !bytes.Equal(got, data) {
		t.Fatalf("StageOut = %q", got)
	}
}

func TestNullPointerTraps(t *testing.T) {
	// Page 0 is unmapped: a store through a null-ish pointer crashes with
	// an illegal-address trap — the implicit VM check the paper relies on.
	k := boot(t)
	err := k.BCopy(0x10, StagingBase, 8)
	if err == nil {
		t.Fatal("null store succeeded")
	}
	if c := k.Crashed(); c == nil || c.Kind != CrashTrap {
		t.Fatalf("crash = %v", c)
	}
}

func TestDeadlockIsHang(t *testing.T) {
	k := boot(t)
	lock := k.NewLockID()
	if err := k.Locks.Acquire(lock); err != nil {
		t.Fatal(err)
	}
	// A write_block on a buffer whose lock is already held deadlocks.
	f := k.AllocFrame(FrameUBC)
	src := k.StageIn([]byte("z"))
	hdr, err := k.WriteBlockArgs(mmu.PhysToKSEG(mem.FrameBase(f)), 1, src, 0, lock)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.WriteBlock(hdr); err == nil {
		t.Fatal("deadlock not detected")
	}
	if c := k.Crashed(); c == nil || c.Kind != CrashHang {
		t.Fatalf("crash = %v", c)
	}
}

func TestStepsAccountingBothModes(t *testing.T) {
	slow := boot(t)
	fast := bootFast(t)
	src1 := slow.StageIn(make([]byte, 4096))
	src2 := fast.StageIn(make([]byte, 4096))
	slow.BCopy(HeapBase+1024, src1, 4096)
	fast.BCopy(HeapBase+1024, src2, 4096)
	if slow.Steps() == 0 || fast.Steps() == 0 {
		t.Fatal("no steps charged")
	}
	ratio := float64(slow.Steps()) / float64(fast.Steps())
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("step accounting diverges between modes: slow=%d fast=%d",
			slow.Steps(), fast.Steps())
	}
}

func TestKernelTooSmallPanics(t *testing.T) {
	m := mem.New(16 * mem.PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for tiny memory")
		}
	}()
	New(m, mmu.New(m), BuildText())
}

// --- allocator tests ---

func TestAllocatorBasic(t *testing.T) {
	k := boot(t)
	a := k.Heap
	p1, err := a.Malloc(100)
	if err != nil || p1 == 0 {
		t.Fatal(err)
	}
	p2, err := a.Malloc(200)
	if err != nil || p2 == 0 || p2 == p1 {
		t.Fatal(err)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorReuseAfterFree(t *testing.T) {
	k := boot(t)
	a := k.Heap
	before := a.FreeBytes()
	p, _ := a.Malloc(500)
	if a.FreeBytes() >= before {
		t.Fatal("malloc did not consume")
	}
	a.Free(p)
	if a.FreeBytes() != before {
		t.Fatalf("free bytes %d != %d after free (coalescing broken?)", a.FreeBytes(), before)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	k := boot(t)
	a := k.Heap
	var ptrs []uint64
	for {
		p, err := a.Malloc(mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if p == 0 {
			break
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) == 0 {
		t.Fatal("no allocations before exhaustion")
	}
	// Free all and ensure full capacity returns.
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	p, err := a.Malloc(mem.PageSize)
	if err != nil || p == 0 {
		t.Fatal("heap did not recover after frees")
	}
}

func TestAllocatorDoubleFree(t *testing.T) {
	k := boot(t)
	p, _ := k.Heap.Malloc(64)
	if err := k.Heap.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := k.Heap.Free(p); err == nil {
		t.Fatal("double free not detected")
	}
}

func TestAllocatorCorruptionDetected(t *testing.T) {
	k := boot(t)
	p, _ := k.Heap.Malloc(64)
	// Flip a bit in the block header (heap fault model).
	k.Mem.FlipBit(HeapPhys(p-16), 5)
	if err := k.Heap.CheckConsistency(); err == nil {
		t.Fatal("corruption not detected")
	}
	_ = p
}

func TestAllocatorPrematureFree(t *testing.T) {
	k := boot(t)
	a := k.Heap
	fire := true
	a.PrematureFree = func() int {
		if fire {
			fire = false
			return 1 // free after 1 further malloc
		}
		return 0
	}
	p1, _ := a.Malloc(64) // gets scheduled for premature free
	// The next malloc triggers the pending free of p1 and then first-fit
	// hands p1's block straight back out — two owners for one block.
	p2, _ := a.Malloc(64)
	if p2 != p1 {
		t.Fatalf("premature free did not recycle in-use block: p1=%#x p2=%#x", p1, p2)
	}
}

func TestAllocatorAlignment(t *testing.T) {
	k := boot(t)
	for i := 1; i < 40; i += 7 {
		p, err := k.Heap.Malloc(i)
		if err != nil || p == 0 {
			t.Fatal(err)
		}
		if p%16 != 0 {
			t.Fatalf("allocation %#x not 16-aligned", p)
		}
	}
}

func TestAllocatorProperty(t *testing.T) {
	// Random alloc/free sequences keep the heap consistent and never
	// return overlapping blocks.
	k := boot(t)
	a := k.Heap
	f := func(ops []uint16) bool {
		live := map[uint64]int{}
		for _, op := range ops {
			size := int(op%512) + 1
			if op%3 == 0 && len(live) > 0 {
				for p := range live {
					if a.Free(p) != nil {
						return false
					}
					delete(live, p)
					break
				}
			} else {
				p, err := a.Malloc(size)
				if err != nil {
					return false
				}
				if p == 0 {
					continue
				}
				for q, qs := range live {
					if p < q+uint64(qs) && q < p+uint64(size) {
						return false // overlap
					}
				}
				live[p] = size
			}
			if a.CheckConsistency() != nil {
				return false
			}
		}
		for p := range live {
			if a.Free(p) != nil {
				return false
			}
		}
		return a.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// --- lock tests ---

func TestLockBasics(t *testing.T) {
	lt := NewLockTable()
	if err := lt.Acquire(5); err != nil {
		t.Fatal(err)
	}
	if !lt.Held(5) {
		t.Fatal("not held")
	}
	if err := lt.Acquire(5); err == nil {
		t.Fatal("double acquire allowed")
	}
	if err := lt.Release(5); err != nil {
		t.Fatal(err)
	}
	if err := lt.Release(5); err == nil {
		t.Fatal("release of free lock allowed")
	}
}

func TestLockElision(t *testing.T) {
	lt := NewLockTable()
	lt.ElideAcquire = func() bool { return true }
	if err := lt.Acquire(1); err != nil {
		t.Fatal(err)
	}
	if lt.Held(1) {
		t.Fatal("elided acquire took the lock")
	}
	lt.ElideAcquire = nil
	lt.ElideRelease = func() bool { return true }
	lt.Acquire(2)
	lt.Release(2)
	if !lt.Held(2) {
		t.Fatal("elided release freed the lock")
	}
}

func TestLockReset(t *testing.T) {
	lt := NewLockTable()
	lt.Acquire(1)
	lt.Reset()
	if lt.Held(1) {
		t.Fatal("reset did not clear")
	}
}

func TestCrashKindStrings(t *testing.T) {
	for _, k := range []CrashKind{CrashTrap, CrashProtection, CrashPanic, CrashHang, CrashIllegalInstr} {
		if k.String() == "" || strings.HasPrefix(k.String(), "CrashKind") {
			t.Fatalf("bad string for %d", int(k))
		}
	}
}

func TestFrameClassStrings(t *testing.T) {
	for c := FrameFree; c <= FrameRegistry; c++ {
		if c.String() == "?" {
			t.Fatalf("missing string for class %d", int(c))
		}
	}
}

func TestExceptionMapping(t *testing.T) {
	cases := []struct {
		exc  kvm.Exception
		want CrashKind
	}{
		{kvm.Exception{Kind: kvm.ExcTrap, Trap: &mmu.Trap{Kind: mmu.TrapIllegalAddress}}, CrashTrap},
		{kvm.Exception{Kind: kvm.ExcTrap, Trap: &mmu.Trap{Kind: mmu.TrapProtection}}, CrashProtection},
		{kvm.Exception{Kind: kvm.ExcIllegalInstr}, CrashIllegalInstr},
		{kvm.Exception{Kind: kvm.ExcAssert}, CrashPanic},
		{kvm.Exception{Kind: kvm.ExcBudget}, CrashHang},
		{kvm.Exception{Kind: kvm.ExcStackOverflow}, CrashPanic},
		{kvm.Exception{Kind: kvm.ExcIntrinsic, Reason: reasonDeadlock}, CrashHang},
		{kvm.Exception{Kind: kvm.ExcIntrinsic, Reason: "other"}, CrashPanic},
	}
	for i, c := range cases {
		k := boot(t)
		got := k.crashFromException(&c.exc)
		if got.Kind != c.want {
			t.Errorf("case %d: kind = %v, want %v", i, got.Kind, c.want)
		}
	}
}
