// Txnstore: the transaction-processing case the paper's introduction
// motivates.
//
// A tiny write-ahead-logged key/value store commits each transaction by
// appending a log record and calling fsync — the classic pattern whose
// throughput is limited by synchronous disk writes. On Rio, fsync returns
// immediately because memory already is stable storage, so commits run at
// memory speed with the same durability guarantee: the store survives an
// OS crash via warm reboot, and the log replays cleanly.
//
// Run: go run ./examples/txnstore
package main

import (
	"fmt"
	"log"
	"strings"

	"rio"
)

// Store is a WAL-backed key/value store on a simulated machine.
type Store struct {
	sys *rio.System
	log *rio.File
	off int64
	kv  map[string]string
}

// OpenStore initialises the store on a fresh volume.
func OpenStore(sys *rio.System) (*Store, error) {
	f, err := sys.Create("/wal")
	if err != nil {
		return nil, err
	}
	return &Store{sys: sys, log: f, kv: map[string]string{}}, nil
}

// Commit durably applies one put: append the record, fsync, then apply.
func (s *Store) Commit(key, val string) error {
	rec := fmt.Sprintf("%s=%s\n", key, val)
	if _, err := s.log.WriteAt([]byte(rec), s.off); err != nil {
		return err
	}
	if err := s.log.Sync(); err != nil { // durability point
		return err
	}
	s.off += int64(len(rec))
	s.kv[key] = val
	return nil
}

// Recover rebuilds the in-memory table from the log after a reboot.
func Recover(sys *rio.System) (*Store, int, error) {
	data, err := sys.ReadFile("/wal")
	if err != nil {
		return nil, 0, err
	}
	f, err := sys.Open("/wal")
	if err != nil {
		return nil, 0, err
	}
	s := &Store{sys: sys, log: f, off: int64(len(data)), kv: map[string]string{}}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			continue
		}
		s.kv[k] = v
		n++
	}
	return s, n, nil
}

func bench(policy rio.Policy, txns int) (tps float64, sys *rio.System, st *Store) {
	s, err := rio.New(rio.Config{Policy: policy})
	if err != nil {
		log.Fatal(err)
	}
	store, err := OpenStore(s)
	if err != nil {
		log.Fatal(err)
	}
	start := s.Elapsed()
	for i := 0; i < txns; i++ {
		key := fmt.Sprintf("account%03d", i%100)
		val := fmt.Sprintf("balance=%d", 1000+i)
		if err := store.Commit(key, val); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := s.Elapsed() - start
	return float64(txns) / elapsed.Seconds(), s, store
}

func main() {
	const txns = 500

	diskTPS, _, _ := bench(rio.PolicyUFSWTWrite, txns)
	fmt.Printf("write-through disk commits: %8.0f txn/s\n", diskTPS)

	rioTPS, sys, store := bench(rio.PolicyRio, txns)
	fmt.Printf("Rio commits:                %8.0f txn/s (%.0fx)\n",
		rioTPS, rioTPS/diskTPS)

	// Same durability: crash the OS mid-flight and recover.
	want := len(store.kv)
	sys.Crash("scheduler deadlock")
	if _, err := sys.WarmReboot(); err != nil {
		log.Fatal(err)
	}
	recovered, records, err := Recover(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after OS crash + warm reboot: replayed %d log records, %d keys (want %d)\n",
		records, len(recovered.kv), want)
	if len(recovered.kv) != want {
		log.Fatal("durability violated!")
	}
	fmt.Println("every committed transaction survived")
}
