package kernel

import "fmt"

// LockID identifies a kernel lock. The cache layer assigns one per shared
// structure (cache lists, individual buffers).
type LockID uint32

// Well-known locks.
const (
	LockCacheList LockID = 1 // buffer cache / UBC lists
	LockAlloc     LockID = 2 // block allocator
	LockInode     LockID = 3 // inode table
	// Per-buffer locks are allocated from LockDynBase upward.
	LockDynBase LockID = 100
)

// LockTable implements the kernel's mutual exclusion. The simulator is
// single-threaded, so a lock can only be "contended" if a previous critical
// section failed to release it — which is exactly what the synchronization
// fault model produces. Acquiring a held lock is therefore a deadlock and
// manifests as a hang; releasing a lock that is not held fails the owner
// consistency check and panics, mirroring the two ways elided lock
// operations killed the paper's kernels.
type LockTable struct {
	held map[LockID]bool

	// ElideAcquire and ElideRelease, when non-nil and returning true,
	// make the respective operation silently do nothing (the paper's
	// synchronization fault: procedures return without acquiring/freeing
	// the lock).
	ElideAcquire func() bool
	ElideRelease func() bool

	// Acquires/Releases count real (non-elided) operations.
	Acquires uint64
	Releases uint64
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{held: make(map[LockID]bool)}
}

// ErrDeadlock is returned when acquiring a lock that is already held.
type ErrDeadlock struct{ ID LockID }

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("kernel: deadlock acquiring lock %d", e.ID)
}

// ErrNotHeld is returned when releasing a lock that is not held.
type ErrNotHeld struct{ ID LockID }

func (e *ErrNotHeld) Error() string {
	return fmt.Sprintf("kernel: releasing lock %d not held", e.ID)
}

// Acquire takes the lock.
func (t *LockTable) Acquire(id LockID) error {
	if t.ElideAcquire != nil && t.ElideAcquire() {
		return nil // fault: returned without acquiring
	}
	if t.held[id] {
		return &ErrDeadlock{ID: id}
	}
	t.held[id] = true
	t.Acquires++
	return nil
}

// Release drops the lock.
func (t *LockTable) Release(id LockID) error {
	if t.ElideRelease != nil && t.ElideRelease() {
		return nil // fault: returned without releasing
	}
	if !t.held[id] {
		return &ErrNotHeld{ID: id}
	}
	delete(t.held, id)
	t.Releases++
	return nil
}

// Held reports whether id is currently held.
func (t *LockTable) Held(id LockID) bool { return t.held[id] }

// Reset clears all locks (reboot).
func (t *LockTable) Reset() { t.held = make(map[LockID]bool) }
