package crashtest

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"rio/internal/disk"
	"rio/internal/fault"
	"rio/internal/kernel"
	"rio/internal/sim"
	"rio/internal/txn"
	"rio/internal/warmreboot"
	"rio/internal/workload"
)

// The transactional campaign answers one question the memTest campaign
// cannot: does the WAL-free transaction layer ever expose a torn
// commit? Each run hammers multi-file commits through the publish ->
// apply -> erase cycle until an injected kernel fault crashes the
// machine, warm-reboots, rolls the txn log forward, and then checks
// that every account file carries the same commit id. Mixed ids after
// a recovery that certified the storage clean is a torn transaction —
// the acceptance criterion is that the Torn column stays zero across
// every fault type, with and without the double-fault dimension.

// Salts for the txn campaign's derived randomness (same discipline as
// the memTest campaign: every stream is a pure function of the run
// seed, so reports are byte-identical at any worker count).
const (
	txnCampaignSalt = 0x7874C0DE
	txnRecoverySalt = 0x7872EC04
	// txnRecoveryWindow bounds the injected second-crash step inside
	// txn recovery. Recovery of one small record takes only a handful
	// of steps, so a small window samples both interrupted and clean
	// roll-forwards.
	txnRecoveryWindow = 8
)

// txnAccounts is the number of files each transaction rewrites.
const txnAccounts = 3

// TxnRunResult is the outcome of one transactional crash run.
type TxnRunResult struct {
	System System
	Fault  fault.Type
	Seed   uint64

	Crashed           bool
	CrashKind         kernel.CrashKind
	CrashReason       string
	OpsToCrash        int // commits issued up to and including the crash
	ProtectionInvoked bool

	// Torn: accounts decoded to mixed commit ids after a recovery that
	// reported the storage clean — a torn transaction, the defect this
	// layer exists to rule out.
	Torn bool
	// TornMasked: mixed ids, but recovery reported damage (checksum
	// hits, quarantined or salvaged pages). Scored as detected
	// corruption, not as a torn commit.
	TornMasked bool
	// LostAcked: a consistent state older than the last acked commit
	// with recovery clean — a silent durability violation.
	LostAcked bool
	// Corrupted: any defect at all (torn, lost ack, undecodable
	// accounts, static-file damage).
	Corrupted       bool
	Corruptions     []workload.Corruption
	StaticCorrupted bool

	ChecksumDetected bool
	// RecoveryInterrupted / TxnRecoveryInterrupted: the double-fault
	// second crash hit the warm reboot / the txn roll-forward, which
	// then restarted and completed.
	RecoveryInterrupted    bool
	TxnRecoveryInterrupted bool
	RecoveryAborted        bool
	Quarantined            int
	Salvaged               int
	// TxnQuarantined counts records the txn roll-forward refused as
	// deterministically unappliable and quarantined. The workload only
	// stages writes, so any refusal means storage damage recovery has
	// already accounted for — but it still disqualifies the run from
	// convicting the txn layer of a torn commit.
	TxnQuarantined int
	VolumeLost     bool
}

// RunTxnOne executes a single transactional crash run: boot, warm up
// with commits, inject faults, commit until the machine crashes, warm
// reboot, roll the txn log forward, verify the accounts.
func RunTxnOne(sys System, ft fault.Type, cfg RunConfig) (res TxnRunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("crashtest: simulator panic (txn sys=%v fault=%v seed=%d): %v",
				sys, ft, cfg.Seed, r)
		}
	}()
	res = TxnRunResult{System: sys, Fault: ft, Seed: cfg.Seed}
	if sys == DiskWT {
		return res, fmt.Errorf("crashtest: transactions commit into the protected cache; %v has no warm reboot", sys)
	}
	root := sim.NewRand(cfg.Seed)
	faultRng := root.Fork()
	ttSeed := root.Uint64()

	m, err := buildMachine(sys, cfg)
	if err != nil {
		return res, err
	}
	if err := setupStatic(m); err != nil {
		return res, fmt.Errorf("crashtest: static setup: %w", err)
	}

	tt := workload.NewTxnTest(ttSeed, txnAccounts)
	if err := tt.Setup(m.FS); err != nil {
		return res, fmt.Errorf("crashtest: txn setup: %w", err)
	}

	// A commit is ~an order of magnitude more fs work than one memTest
	// step; scale the warmup down accordingly.
	for i := 0; i < cfg.WarmupOps/3+1; i++ {
		if err := tt.Commit(m.FS); err != nil {
			return res, fmt.Errorf("crashtest: warmup commit %d: %w", i, err)
		}
	}

	if err := fault.Inject(m, ft, cfg.FaultCount, faultRng); err != nil {
		return res, err
	}

	for i := 0; i < cfg.MaxOps; i++ {
		err := tt.Commit(m.FS)
		if c := m.Crashed(); c != nil {
			res.Crashed = true
			res.CrashKind = c.Kind
			res.CrashReason = c.Reason
			res.OpsToCrash = i + 1
			res.ProtectionInvoked = c.Kind == kernel.CrashProtection
			break
		}
		if err != nil {
			// Commit failed but the kernel limps on; the workload marked
			// its log dirty and the next commit rolls it forward.
			continue
		}
	}
	if !res.Crashed {
		return res, nil // discarded by the campaign
	}

	m.CrashFinish()

	if cfg.DiskFaults {
		plan := disk.DefaultFaultPlan(sim.Mix(cfg.Seed, diskFaultSalt))
		m.Disk.SetFaultPlan(&plan)
	}

	dump := m.Mem.Dump()
	opts := warmreboot.DefaultOptions()
	if cfg.DiskFaults {
		opts.CrashAtStep = int(sim.Mix(cfg.Seed, recoveryCrashSalt) % recoveryCrashWindow)
	}
	rep, rerr := warmreboot.FromDumpOpts(m, dump, opts)
	if rerr == warmreboot.ErrInterrupted {
		res.RecoveryInterrupted = true
		rep, rerr = warmreboot.FromDump(m, dump)
	}
	if rerr != nil {
		m.Disk.SetFaultPlan(nil)
		res.RecoveryAborted = true
		res.Corrupted = true
		res.Corruptions = []workload.Corruption{{Path: "/", Detail: "warm reboot failed: " + rerr.Error()}}
		return res, nil
	}
	res.ChecksumDetected = rep.ChecksumMismatches > 0
	res.Quarantined = rep.MetaFailed + rep.DataFailed
	res.Salvaged = rep.Salvaged
	if rep.VolumeLost {
		m.Disk.SetFaultPlan(nil)
		res.VolumeLost = true
		res.Corrupted = true
		res.Corruptions = []workload.Corruption{{Path: "/", Detail: "volume lost: " + rep.Fsck.String()}}
		return res, nil
	}

	// Roll the transaction log forward: committed records complete,
	// torn tails are dropped. In double-fault mode a second crash also
	// interrupts this phase at a seed-derived step; recovery restarts
	// and must converge (Apply is idempotent).
	topts := txn.Options{
		Crashed: func() bool { return m.Crashed() != nil },
	}
	if cfg.DiskFaults {
		topts.CrashAtStep = int(sim.Mix(cfg.Seed, txnRecoverySalt) % txnRecoveryWindow)
	}
	l := txn.NewLog(m.FS)
	if tst, terr := l.RecoverOpts(topts); terr == txn.ErrInterrupted {
		res.TxnRecoveryInterrupted = true
		tst, terr = l.RecoverOpts(txn.Options{Crashed: topts.Crashed})
		if terr != nil {
			m.Disk.SetFaultPlan(nil)
			res.RecoveryAborted = true
			res.Corrupted = true
			res.Corruptions = []workload.Corruption{{Path: "/", Detail: "txn roll-forward failed: " + terr.Error()}}
			return res, nil
		}
		res.TxnQuarantined = tst.Quarantined
	} else if terr != nil {
		m.Disk.SetFaultPlan(nil)
		res.RecoveryAborted = true
		res.Corrupted = true
		res.Corruptions = []workload.Corruption{{Path: "/", Detail: "txn roll-forward failed: " + terr.Error()}}
		return res, nil
	} else {
		res.TxnQuarantined = tst.Quarantined
	}
	m.Disk.SetFaultPlan(nil)

	// Only a recovery that certified the storage clean can convict the
	// transaction layer: when recovery itself reported damage (checksum
	// hits, quarantined or salvaged pages, refused txn records), mixed
	// ids are detected storage corruption, not a torn commit.
	recoveryClean := !res.ChecksumDetected && res.Quarantined == 0 && res.Salvaged == 0 &&
		res.TxnQuarantined == 0

	v := tt.Verify(m.FS)
	res.Corruptions = append(res.Corruptions, v.Failures...)
	res.Torn = v.Mixed && recoveryClean
	res.TornMasked = v.Mixed && !recoveryClean
	res.LostAcked = v.LostAcked && recoveryClean
	res.StaticCorrupted = checkStatic(m)
	res.Corrupted = len(res.Corruptions) > 0 || res.StaticCorrupted
	return res, nil
}

// TxnSystems lists the systems the transactional campaign exercises:
// both Rio variants (transactions commit into the cache, so the
// write-through disk column does not apply).
var TxnSystems = []System{RioNoProt, RioProt}

// TxnCampaignConfig parameterises the transactional campaign. Unlike
// the memTest campaign there is no crash quota: every cell runs a
// fixed number of attempts, which makes the fold trivially
// deterministic at any worker count.
type TxnCampaignConfig struct {
	Seed            uint64
	AttemptsPerCell int
	Workers         int // 0 = GOMAXPROCS
	Run             RunConfig
	// Systems and Faults default to TxnSystems and fault.AllTypes.
	Systems []System
	Faults  []fault.Type
	// Progress, when set, receives one line per folded cell.
	Progress func(string)
}

// DefaultTxnCampaignConfig returns the standard parameters.
func DefaultTxnCampaignConfig(seed uint64) TxnCampaignConfig {
	run := DefaultRunConfig(0)
	run.MaxOps = 120 // commits, each ~10 fs ops
	return TxnCampaignConfig{
		Seed:            seed,
		AttemptsPerCell: 10,
		Run:             run,
	}
}

// TxnCell aggregates one (system, fault) cell of the campaign.
type TxnCell struct {
	Attempts    int `json:"attempts"`
	Crashes     int `json:"crashes"`
	Discarded   int `json:"discarded"`
	Errors      int `json:"errors"`
	Torn        int `json:"torn"`
	TornMasked  int `json:"torn_masked"`
	LostAcked   int `json:"lost_acked"`
	Corrupted   int `json:"corrupted"`
	Protection  int `json:"protection"`
	Interrupted int `json:"interrupted"`
	TxnInterr   int `json:"txn_interrupted"`
	Aborted     int `json:"aborted"`
	Quarantined int `json:"quarantined"`
	Salvaged    int `json:"salvaged"`
	TxnQuarant  int `json:"txn_quarantined"`
	VolumeLost  int `json:"volume_lost"`

	LastError string `json:"last_error,omitempty"`
}

func (c *TxnCell) fold(res TxnRunResult, err error) {
	c.Attempts++
	if err != nil {
		c.Errors++
		c.LastError = err.Error()
		return
	}
	if !res.Crashed {
		c.Discarded++
		return
	}
	c.Crashes++
	if res.ProtectionInvoked {
		c.Protection++
	}
	if res.Torn {
		c.Torn++
	}
	if res.TornMasked {
		c.TornMasked++
	}
	if res.LostAcked {
		c.LostAcked++
	}
	if res.Corrupted {
		c.Corrupted++
	}
	if res.RecoveryInterrupted {
		c.Interrupted++
	}
	if res.TxnRecoveryInterrupted {
		c.TxnInterr++
	}
	if res.RecoveryAborted {
		c.Aborted++
	}
	c.Quarantined += res.Quarantined
	c.Salvaged += res.Salvaged
	c.TxnQuarant += res.TxnQuarantined
	if res.VolumeLost {
		c.VolumeLost++
	}
}

// TxnReport is the campaign's aggregated outcome.
type TxnReport struct {
	Seed            uint64                             `json:"seed"`
	AttemptsPerCell int                                `json:"attempts_per_cell"`
	DiskFaults      bool                               `json:"disk_faults"`
	Systems         []System                           `json:"-"`
	Faults          []fault.Type                       `json:"-"`
	Cells           map[System]map[fault.Type]*TxnCell `json:"-"`
}

// TotalTorn sums the Torn column — the number that must be zero.
func (r *TxnReport) TotalTorn() int {
	n := 0
	for _, sys := range r.Systems {
		for _, ft := range r.Faults {
			n += r.Cells[sys][ft].Torn
		}
	}
	return n
}

// TotalAborted sums recovery aborts across the campaign.
func (r *TxnReport) TotalAborted() int {
	n := 0
	for _, sys := range r.Systems {
		for _, ft := range r.Faults {
			n += r.Cells[sys][ft].Aborted
		}
	}
	return n
}

// Errors returns every cell's harness errors, deterministically
// ordered.
func (r *TxnReport) Errors() []string {
	var out []string
	for _, sys := range r.Systems {
		for _, ft := range r.Faults {
			c := r.Cells[sys][ft]
			if c.Errors > 0 {
				out = append(out, fmt.Sprintf("%v/%v: %d errors, last: %s", sys, ft, c.Errors, c.LastError))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Table renders the campaign as a fault-type × system table of
// torn/corrupted/crashes, plus totals. Built purely from folded cells,
// so the bytes are identical at any worker count.
func (r *TxnReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "Fault Type")
	for _, sys := range r.Systems {
		fmt.Fprintf(&b, "%18s", sys.String())
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-22s", "")
	for range r.Systems {
		fmt.Fprintf(&b, "%18s", "torn/corr/crash")
	}
	b.WriteString("\n")
	for _, ft := range r.Faults {
		fmt.Fprintf(&b, "%-22s", ft.String())
		for _, sys := range r.Systems {
			c := r.Cells[sys][ft]
			fmt.Fprintf(&b, "%18s", fmt.Sprintf("%d/%d/%d", c.Torn, c.Corrupted, c.Crashes))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-22s", "Total")
	for _, sys := range r.Systems {
		var torn, corr, crash int
		for _, ft := range r.Faults {
			c := r.Cells[sys][ft]
			torn += c.Torn
			corr += c.Corrupted
			crash += c.Crashes
		}
		fmt.Fprintf(&b, "%18s", fmt.Sprintf("%d/%d/%d", torn, corr, crash))
	}
	b.WriteString("\n")
	return b.String()
}

// RunTxnCampaign runs AttemptsPerCell transactional crash runs for
// every (system, fault) cell. Each run's seed is a pure function of
// (campaign seed, system, fault, attempt), and results fold in attempt
// order, so the report is byte-identical at any worker count.
func RunTxnCampaign(cfg TxnCampaignConfig) (*TxnReport, error) {
	if cfg.AttemptsPerCell <= 0 {
		return nil, fmt.Errorf("crashtest: AttemptsPerCell must be positive")
	}
	systems := cfg.Systems
	if len(systems) == 0 {
		systems = TxnSystems
	}
	faults := cfg.Faults
	if len(faults) == 0 {
		faults = fault.AllTypes
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	effSeed := sim.Mix(cfg.Seed, txnCampaignSalt)

	type slot struct {
		res TxnRunResult
		err error
	}
	// results[si][fi][attempt]: workers write disjoint slots, the fold
	// reads them in deterministic order after the barrier.
	results := make([][][]slot, len(systems))
	type job struct{ si, fi, attempt int }
	var jobs []job
	for si := range systems {
		results[si] = make([][]slot, len(faults))
		for fi := range faults {
			results[si][fi] = make([]slot, cfg.AttemptsPerCell)
			for a := 0; a < cfg.AttemptsPerCell; a++ {
				jobs = append(jobs, job{si, fi, a})
			}
		}
	}

	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				run := cfg.Run
				run.Seed = RunSeed(effSeed, systems[j.si], faults[j.fi], j.attempt)
				res, err := RunTxnOne(systems[j.si], faults[j.fi], run)
				results[j.si][j.fi][j.attempt] = slot{res, err}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	rep := &TxnReport{
		Seed:            cfg.Seed,
		AttemptsPerCell: cfg.AttemptsPerCell,
		DiskFaults:      cfg.Run.DiskFaults,
		Systems:         systems,
		Faults:          faults,
		Cells:           make(map[System]map[fault.Type]*TxnCell),
	}
	for si, sys := range systems {
		rep.Cells[sys] = make(map[fault.Type]*TxnCell)
		for fi, ft := range faults {
			cell := &TxnCell{}
			for a := 0; a < cfg.AttemptsPerCell; a++ {
				s := results[si][fi][a]
				cell.fold(s.res, s.err)
			}
			rep.Cells[sys][ft] = cell
			if cfg.Progress != nil {
				cfg.Progress(fmt.Sprintf("txn %v/%v: crashes=%d torn=%d corrupted=%d",
					sys, ft, cell.Crashes, cell.Torn, cell.Corrupted))
			}
		}
	}
	return rep, nil
}
