package server

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// histBuckets covers [1µs, 2^25µs ≈ 34s) in power-of-two buckets, with
// bucket 0 for sub-microsecond observations and the last bucket as
// overflow. Fixed buckets keep Observe allocation-free and O(1), which
// is what a per-request hot path wants; the price is ~2x quantile
// resolution, plenty for a load report.
const histBuckets = 26

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready to use. Not safe for concurrent use; keep one per goroutine
// (or behind the owner's lock) and Merge at reporting time.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us)) // 0 -> 0, [2^(k-1), 2^k) -> k
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b]++
	h.total++
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Overflow returns the number of observations that landed in the
// overflow bucket (at or above 2^24µs ≈ 17s). Quantiles that resolve
// there are lower bounds, so a non-zero overflow count is the signal
// that the tail outran the histogram's range.
func (h *Histogram) Overflow() uint64 { return h.counts[histBuckets-1] }

// Quantile returns the q-th quantile in microseconds (q in [0,1]),
// interpolating linearly within the winning bucket. Returns 0 for an
// empty histogram. The overflow bucket is unbounded above, so a
// quantile landing there returns the bucket's lower bound — a stated
// underestimate — rather than interpolating toward a 2^25µs ceiling no
// observation is actually known to respect.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.total)
	var cum float64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := bucketBounds(b)
			if b == histBuckets-1 {
				return lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	lo, _ := bucketBounds(histBuckets - 1)
	return lo
}

// bucketBounds returns bucket b's [lo, hi) range in microseconds.
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (b - 1)), float64(uint64(1) << b)
}

// ShardMetrics is one shard's activity snapshot.
type ShardMetrics struct {
	Shard     int     `json:"shard"`
	Ops       uint64  `json:"ops"`       // requests answered (any status)
	Errors    uint64  `json:"errors"`    // non-OK, non-retryable answers
	Retried   uint64  `json:"retried"`   // StatusAgain answers (shard down)
	Rejected  uint64  `json:"rejected"`  // StatusAgain at enqueue (queue full)
	Bytes     uint64  `json:"bytes"`     // payload in + out
	Batches   uint64  `json:"batches"`   // drain cycles
	AvgBatch  float64 `json:"avg_batch"` // mean requests per drain
	MaxBatch  int     `json:"max_batch"` // largest drain observed
	QueueLen  int     `json:"queue_len"` // queued requests at snapshot time
	AvgQueue  float64 `json:"avg_queue"` // mean queue depth observed at drain wakeup
	Yields    uint64  `json:"yields"`    // coalescing yields taken (adaptive drain)
	Down      bool    `json:"down"`      // crashed, awaiting warmboot
	Crashes   uint64  `json:"crashes"`   // admin crash ops honoured
	Warmboots uint64  `json:"warmboots"` // warm reboots completed

	TxnCommits uint64 `json:"txn_commits"` // transactions committed (acked OK)
	TxnAborts  uint64 `json:"txn_aborts"`  // transactions aborted by clients

	P50us       float64 `json:"p50_us"` // request latency, enqueue to reply
	P95us       float64 `json:"p95_us"`
	P99us       float64 `json:"p99_us"`
	LatOverflow uint64  `json:"lat_overflow"` // observations past the histogram range (quantiles are lower bounds)
}

// WritevMetrics describes how well the TCP writers coalesced response
// frames into vectored writes: total writev calls, total frames
// carried, and a distribution over frames-per-call (buckets 1, 2, 3-4,
// 5-8, 9-16, 17+). AvgFrames > 1 means pipelined responses really are
// leaving in batches rather than one syscall each.
type WritevMetrics struct {
	Calls     uint64    `json:"calls"`
	Frames    uint64    `json:"frames"`
	AvgFrames float64   `json:"avg_frames"`
	Dist      [6]uint64 `json:"dist"`
}

// Metrics is a whole-server snapshot: per-shard rows plus aggregate
// totals and merged-latency quantiles.
type Metrics struct {
	Shards   []ShardMetrics `json:"shards"`
	Ops      uint64         `json:"ops"`
	Bytes    uint64         `json:"bytes"`
	AvgBatch float64        `json:"avg_batch"` // mean requests per drain, all shards
	P50us    float64        `json:"p50_us"`
	P95us    float64        `json:"p95_us"`
	P99us    float64        `json:"p99_us"`
	Writev   *WritevMetrics `json:"writev,omitempty"` // TCP response batching, when serving over TCP
}

// Table renders the snapshot as an aligned text table.
func (m Metrics) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %8s %8s %8s %12s %9s %6s %9s %9s %9s %5s\n",
		"shard", "ops", "errors", "retried", "rejected", "bytes", "batches", "avg", "p50us", "p95us", "p99us", "down")
	for _, s := range m.Shards {
		down := ""
		if s.Down {
			down = "DOWN"
		}
		fmt.Fprintf(&b, "%-6d %10d %8d %8d %8d %12d %9d %6.1f %9.0f %9.0f %9.0f %5s\n",
			s.Shard, s.Ops, s.Errors, s.Retried, s.Rejected, s.Bytes,
			s.Batches, s.AvgBatch, s.P50us, s.P95us, s.P99us, down)
	}
	fmt.Fprintf(&b, "%-6s %10d %8s %8s %8s %12d %9s %6.1f %9.0f %9.0f %9.0f\n",
		"total", m.Ops, "", "", "", m.Bytes, "", m.AvgBatch, m.P50us, m.P95us, m.P99us)
	if w := m.Writev; w != nil {
		fmt.Fprintf(&b, "writev %d calls, %d frames, %.2f frames/call; dist 1:%d 2:%d 3-4:%d 5-8:%d 9-16:%d 17+:%d\n",
			w.Calls, w.Frames, w.AvgFrames, w.Dist[0], w.Dist[1], w.Dist[2], w.Dist[3], w.Dist[4], w.Dist[5])
	}
	return b.String()
}
