// Package server is riod's serving layer: a sharded concurrent front
// end over the single-threaded Rio simulation.
//
// The deterministic core (rio.System and everything below it) models
// one machine and must stay on one goroutine — that is what makes crash
// campaigns reproducible. This package gets concurrency the way a
// sharded storage service does: S independent rio.System instances,
// each owned by exactly one shard goroutine, with requests routed to a
// shard by path hash and queued on a bounded per-shard channel. The
// shard goroutine drains its queue in batches and runs each request
// against its System sequentially, so no simulation state is ever
// touched from two goroutines; all cross-goroutine traffic is requests
// and responses by value.
//
// Each shard plays the paper's role of one Rio machine: writes are
// durable the moment they are acknowledged, and an administratively
// crashed shard warm-reboots back to exactly the acknowledged state
// while its neighbours keep serving. While a shard is down, requests
// for it fail fast with wire.StatusAgain — the EAGAIN discipline —
// rather than queueing behind an outage.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"rio"
	"rio/internal/txn"
	"rio/internal/wire"
)

// Config sizes a server. The zero value of any field picks the default.
type Config struct {
	// Shards is the number of independent rio.System instances
	// (default 4). Requests route to a shard by FNV-1a hash of Path.
	Shards int
	// QueueDepth bounds each shard's request queue (default 128). A
	// full queue answers wire.StatusAgain instead of blocking — load
	// shedding, not buffering, is the overload response.
	QueueDepth int
	// MaxBatch bounds how many queued requests one drain cycle hands
	// the shard goroutine (default 32).
	MaxBatch int
	// Policy, Seed, MemoryMB, DiskMB configure each shard's machine.
	// Shard i boots with seed sim.Mix(Seed, i) via rio.NewShards.
	Policy   rio.Policy
	Seed     uint64
	MemoryMB int
	DiskMB   int

	// IdleTimeout drops a TCP connection whose peer sends nothing for
	// this long (default 5m; negative disables). WriteTimeout bounds
	// each response frame write (default 30s; negative disables). Both
	// exist so a hung or partitioned peer cannot pin a serving
	// goroutine forever.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration

	// DrainTimeout bounds how long Close waits for the drain. Zero
	// means wait forever (the historical behaviour). When the bound
	// expires — a shard goroutine wedged mid-batch, or a connection
	// that never hangs up — every request still sitting in a shard
	// queue is answered wire.StatusTimeout and Close returns; a wedged
	// goroutine itself cannot be killed and is abandoned.
	DrainTimeout time.Duration

	// testGate, when set, is called by a shard goroutine before each
	// drain cycle. Tests use it to stall a shard and observe queueing
	// behaviour deterministically.
	testGate func(shard int)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = defaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = defaultWriteTimeout
	}
	return c
}

// task carries one request through a shard queue. The response channel
// is buffered so the shard goroutine never blocks on a reply. wantFrame
// asks for the zero-copy read path: an OpRead answered as a serialized
// pooled wire frame instead of a Data slice.
type task struct {
	req       *wire.Request
	resp      chan reply
	enq       time.Time
	wantFrame bool
}

// shard owns one rio.System. Only the shard goroutine touches sys,
// down, and the transaction state; mu guards the metrics fields read by
// Metrics().
type shard struct {
	id  int
	sys *rio.System
	ch  chan task

	// txns holds the shard's open (staged, uncommitted) transactions,
	// keyed by the handle's low 32 bits; txnSeq mints handles. Staging
	// is volatile server state — a crash discards it, and only a
	// published commit record survives into recovery.
	txns   map[uint32]*openTxn
	txnSeq uint32

	// logDirty is true while the txn log holds a published record that
	// has not been fully applied and erased. Publishing over such a log
	// would discard the record and strand its partial application, so
	// serve rolls it forward first. Shard goroutine only.
	logDirty bool

	// pool is the server's shared frame-buffer pool; results is the
	// shard's reusable serve scratch (shard goroutine only).
	pool    *framePool
	results []done

	mu         sync.Mutex
	down       bool
	ops        uint64
	errors     uint64
	retried    uint64
	rejected   uint64
	bytes      uint64
	batches    uint64
	batchSum   uint64
	maxBatch   int
	depthSum   uint64
	yields     uint64
	crashes    uint64
	warmboots  uint64
	txnCommits uint64
	txnAborts  uint64
	lat        Histogram
}

// done pairs one task with its computed response through serve()'s
// phases. Package-level rather than local to serve so each shard can
// keep a reusable results scratch across batches instead of allocating
// one per drain cycle.
type done struct {
	t       task
	resp    *wire.Response
	frame   []byte // pooled wire frame carrying resp's payload, or nil
	dataLen int    // payload bytes inside frame (frame != nil only)
	commit  int    // index into sealed, or -1
}

// openTxn is one in-flight transaction's staged ops. Shard goroutine
// only.
type openTxn struct {
	ops   []txn.Op
	bytes int
}

// Transaction staging limits. A transaction over these answers
// wire.StatusTxnLimit; maxTxnOps stays well under txn.MaxOps so a
// sealed record always encodes.
const (
	maxOpenTxns = 64
	maxTxnOps   = 256
	maxTxnBytes = 4 << 20
)

// Server routes requests to shards. Safe for concurrent use.
type Server struct {
	cfg    Config
	shards []*shard
	pool   framePool // recycled wire-frame buffers (zero-copy read path)

	mu     sync.RWMutex // guards closed and the enqueue-vs-close race
	closed bool
	wg     sync.WaitGroup

	// writev accounting, fed by the TCP writers: how many response
	// frames each flush coalesced into one vectored write.
	wvMu     sync.Mutex
	wvCalls  uint64
	wvFrames uint64
	wvDist   [6]uint64 // 1, 2, 3-4, 5-8, 9-16, 17+ frames per writev
}

// recordWritev notes one vectored write that flushed frames response
// frames.
func (s *Server) recordWritev(frames int) {
	bucket := 0
	switch {
	case frames <= 1:
	case frames == 2:
		bucket = 1
	case frames <= 4:
		bucket = 2
	case frames <= 8:
		bucket = 3
	case frames <= 16:
		bucket = 4
	default:
		bucket = 5
	}
	s.wvMu.Lock()
	s.wvCalls++
	s.wvFrames += uint64(frames)
	s.wvDist[bucket]++
	s.wvMu.Unlock()
}

// New boots cfg.Shards independent machines and starts their shard
// goroutines. Call Close to drain and stop.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	systems, err := rio.NewShards(cfg.Shards, rio.Config{
		Policy:   cfg.Policy,
		Seed:     cfg.Seed,
		MemoryMB: cfg.MemoryMB,
		DiskMB:   cfg.DiskMB,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg}
	s.shards = make([]*shard, cfg.Shards)
	for i, sys := range systems {
		sh := &shard{id: i, sys: sys, ch: make(chan task, cfg.QueueDepth), pool: &s.pool}
		s.shards[i] = sh
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sh.run(cfg)
		}()
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// ShardOf returns the shard a path routes to: FNV-1a 64 of the path,
// reduced mod the shard count. The hash is stable across processes and
// versions — campaign seeds and golden transcripts depend on routing
// never drifting.
func (s *Server) ShardOf(path string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

// Do submits one request and blocks until its response. It never
// returns nil. Overload and outages surface as typed statuses:
// wire.StatusAgain (retry with backoff) when the target shard's queue
// is full or the shard is down, wire.StatusClosed once the server is
// draining or stopped.
func (s *Server) Do(req *wire.Request) *wire.Response {
	return s.do(req, false).resp
}

// route validates the request and picks its shard.
func (s *Server) route(req *wire.Request) (*shard, *wire.Response) {
	failWith := func(st wire.Status, msg string) (*shard, *wire.Response) {
		return nil, &wire.Response{ID: req.ID, Status: st, Msg: msg}
	}
	fail := func(msg string) (*shard, *wire.Response) {
		return failWith(wire.StatusInvalid, msg)
	}
	if !req.Op.Valid() {
		return fail(fmt.Sprintf("unknown op %d", uint8(req.Op)))
	}
	// Canonicalize paths before anything keys on their spelling. The fs
	// trims outer slashes, so "a", "//a", and "/a/" all reach "/a" — if
	// routing, the /.txn reservation, or transaction staging compared the
	// raw spelling, an alias would slip past them (a write to ".txn/log"
	// must not forge the commit log). Length is checked before the
	// rewrite so the bound applies to what the client actually sent.
	if len(req.Path) > wire.MaxPath || len(req.Path2) > wire.MaxPath {
		return fail("path too long")
	}
	if req.Path != "" {
		p, ok := txn.CanonicalPath(req.Path)
		if !ok {
			return fail(fmt.Sprintf("malformed path %q", req.Path))
		}
		req.Path = p
	}
	if req.Path2 != "" {
		p, ok := txn.CanonicalPath(req.Path2)
		if !ok {
			return fail(fmt.Sprintf("malformed path %q", req.Path2))
		}
		req.Path2 = p
	}
	switch req.Op {
	case wire.OpCrash, wire.OpWarmboot:
		if req.Shard < 0 || int(req.Shard) >= len(s.shards) {
			return fail(fmt.Sprintf("admin op %v: shard %d out of range [0,%d)",
				req.Op, req.Shard, len(s.shards)))
		}
		return s.shards[req.Shard], nil
	case wire.OpSync:
		if req.Txn != 0 {
			return fail("sync is not transactional")
		}
		// Sync with a path routes like a data op. With an empty path it
		// targets Request.Shard (clients wanting every shard issue one
		// per shard), defaulting to shard 0.
		if req.Path == "" {
			if req.Shard >= 0 && int(req.Shard) < len(s.shards) {
				return s.shards[req.Shard], nil
			}
			return s.shards[0], nil
		}
	case wire.OpTxnBegin:
		if req.Txn != 0 {
			return fail("txn-begin inside a transaction")
		}
		if req.Path == "" {
			return fail("txn-begin needs a path (it pins the transaction's shard)")
		}
	case wire.OpTxnCommit, wire.OpTxnAbort:
		if req.Txn == 0 {
			return fail(fmt.Sprintf("%v needs a transaction handle", req.Op))
		}
	case wire.OpMv:
		if req.Path == "" || req.Path2 == "" {
			return fail("mv needs two paths")
		}
		if s.ShardOf(req.Path) != s.ShardOf(req.Path2) {
			// Typed so clients and tests can tell "unsupported cross-shard
			// op" from a real failure — the seam a future two-phase
			// distributed mv plugs into, and the same status transactions
			// use for a staged op whose path lives off the txn's shard.
			return failWith(wire.StatusCrossShard, fmt.Sprintf(
				"mv across shards (%d -> %d) is not supported",
				s.ShardOf(req.Path), s.ShardOf(req.Path2)))
		}
	default:
		if req.Path == "" {
			return fail(fmt.Sprintf("%v needs a path", req.Op))
		}
	}
	if reservedPath(req.Path) || reservedPath(req.Path2) {
		return fail(txn.Dir + " is reserved for the transaction log")
	}
	if len(req.Data) > wire.MaxData {
		return fail("data too large")
	}
	if req.Txn != 0 {
		// A transaction lives on one shard: the handle's high 32 bits
		// name it, and every staged path must hash there too — the
		// commit record is published to that shard's log and must be
		// appliable entirely within it.
		owner := int(req.Txn >> 32)
		if owner >= len(s.shards) {
			return fail(fmt.Sprintf("txn handle names shard %d, out of range [0,%d)",
				owner, len(s.shards)))
		}
		switch req.Op {
		case wire.OpTxnCommit, wire.OpTxnAbort:
			return s.shards[owner], nil
		case wire.OpWrite, wire.OpMkdir, wire.OpRm, wire.OpMv:
			if s.ShardOf(req.Path) != owner {
				return failWith(wire.StatusCrossShard, fmt.Sprintf(
					"path routes to shard %d but the transaction lives on shard %d",
					s.ShardOf(req.Path), owner))
			}
			return s.shards[owner], nil
		default:
			return fail(fmt.Sprintf("%v cannot run inside a transaction", req.Op))
		}
	}
	return s.shards[s.ShardOf(req.Path)], nil
}

// reservedPath reports whether p is under the transaction log's
// reserved prefix. Client ops are refused there, which is what lets the
// group publish reorder freely against the rest of its batch: no client
// request can observe or disturb the log file. The prefix match is
// sound only because route canonicalizes paths first — the fs would
// resolve aliases like ".txn/log" or "//.txn/log" to the same file.
func reservedPath(p string) bool {
	return p == txn.Dir || strings.HasPrefix(p, txn.Dir+"/")
}

// Close drains and stops the server: new requests are refused with
// wire.StatusClosed, every already-queued request is answered, and all
// shard goroutines exit before Close returns. Idempotent. With
// Config.DrainTimeout set, the wait is bounded: if a shard queue never
// empties (a goroutine wedged in the simulator, a test gate that never
// opens), the remaining queued requests are failed with
// wire.StatusTimeout instead of hanging shutdown.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.waitDrain()
		return
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.mu.Unlock()
	s.waitDrain()
}

// waitDrain waits for the shard goroutines (and any serving
// connections) to finish, bounded by DrainTimeout when set. On timeout
// it answers everything still queued with StatusTimeout — each task is
// received exactly once, either by its shard goroutine or here, so no
// request is ever double-answered.
func (s *Server) waitDrain() {
	if s.cfg.DrainTimeout <= 0 {
		s.wg.Wait()
		return
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		for _, sh := range s.shards {
			for {
				t, ok := <-sh.ch // closed by Close; never blocks once empty
				if !ok {
					break
				}
				t.resp <- reply{resp: &wire.Response{ID: t.req.ID, Status: wire.StatusTimeout,
					Msg: fmt.Sprintf("shard %d drain timed out after %v; request unserved", sh.id, s.cfg.DrainTimeout)}}
			}
		}
	}
}

// Metrics snapshots per-shard and aggregate counters.
func (s *Server) Metrics() Metrics {
	var m Metrics
	var merged Histogram
	var batches, batchSum uint64
	for _, sh := range s.shards {
		sh.mu.Lock()
		row := ShardMetrics{
			Shard: sh.id, Ops: sh.ops, Errors: sh.errors, Retried: sh.retried,
			Rejected: sh.rejected, Bytes: sh.bytes, Batches: sh.batches,
			MaxBatch: sh.maxBatch, QueueLen: len(sh.ch), Yields: sh.yields, Down: sh.down,
			Crashes: sh.crashes, Warmboots: sh.warmboots,
			TxnCommits: sh.txnCommits, TxnAborts: sh.txnAborts,
			P50us: sh.lat.Quantile(0.50), P95us: sh.lat.Quantile(0.95),
			P99us: sh.lat.Quantile(0.99), LatOverflow: sh.lat.Overflow(),
		}
		if sh.batches > 0 {
			row.AvgBatch = float64(sh.batchSum) / float64(sh.batches)
			row.AvgQueue = float64(sh.depthSum) / float64(sh.batches)
		}
		batches += sh.batches
		batchSum += sh.batchSum
		merged.Merge(&sh.lat)
		sh.mu.Unlock()
		m.Shards = append(m.Shards, row)
		m.Ops += row.Ops
		m.Bytes += row.Bytes
	}
	if batches > 0 {
		m.AvgBatch = float64(batchSum) / float64(batches)
	}
	m.P50us = merged.Quantile(0.50)
	m.P95us = merged.Quantile(0.95)
	m.P99us = merged.Quantile(0.99)
	s.wvMu.Lock()
	if s.wvCalls > 0 {
		m.Writev = &WritevMetrics{Calls: s.wvCalls, Frames: s.wvFrames,
			AvgFrames: float64(s.wvFrames) / float64(s.wvCalls), Dist: s.wvDist}
	}
	s.wvMu.Unlock()
	return m
}

// run is the shard goroutine: drain a batch, serve it, repeat, until
// the channel closes — then serve what remains and exit. The batch
// size and the queue depth observed at each wakeup are recorded so the
// metrics show how much coalescing the queue actually achieves under
// load.
//
// The drain is adaptive on that depth. A wakeup that finds more work
// already queued is mid-burst: one scheduler pass before draining lets
// the producers racing this wakeup land too, so the burst is served as
// a single batch — one group commit, one metrics pass — instead of K
// park/unpark handoffs. A wakeup that finds the queue empty is a lone
// request from a caller who is (transitively) blocked on the answer;
// serving it immediately is strictly better than yielding on the off
// chance a second request materializes.
func (sh *shard) run(cfg Config) {
	batch := make([]task, 0, cfg.MaxBatch)
	for {
		if cfg.testGate != nil {
			cfg.testGate(sh.id)
		}
		t, ok := <-sh.ch
		if !ok {
			return
		}
		depth := len(sh.ch)
		yielded := false
		if depth > 0 && depth < cfg.MaxBatch {
			runtime.Gosched()
			yielded = true
		}
		sh.mu.Lock()
		sh.depthSum += uint64(depth)
		if yielded {
			sh.yields++
		}
		sh.mu.Unlock()
		batch = append(batch[:0], t)
	drain:
		for len(batch) < cfg.MaxBatch {
			select {
			case t, ok := <-sh.ch:
				if !ok {
					// A receive only reports closed once the buffer is
					// empty, so this batch is the last of the work:
					// answer it and exit — Close promises a drain.
					sh.serve(batch)
					return
				}
				batch = append(batch, t)
			default:
				break drain
			}
		}
		sh.serve(batch)
	}
}

// serve answers one drained batch sequentially on the shard's System,
// with transactional group commit wrapped around it: every commit
// sealed in this batch is published to the shard's txn log in one
// write (Publish), each record is then applied in its task-order slot
// (Apply), the log is erased once every published record has fully
// applied (Erase), and only then are responses delivered (ackCommit).
// That order is the whole crash-safety argument — a commit acked
// before its record was durable would be a torn-commit window — and
// the commitorder analyzer (internal/lint) checks it statically.
func (sh *shard) serve(batch []task) {
	results := sh.results[:0]
	var sealed []txn.Record

	// Stage: transaction control ops mutate only shard-local staging
	// state; a commit seals its record for the group publish. The group
	// is budgeted against txn.MaxPublishBytes — the log is one fs file —
	// so a commit that would overflow it is deferred (StatusAgain, the
	// transaction stays open) rather than poisoning the whole publish.
	groupBytes := 0
	for _, t := range batch {
		d := done{t: t, commit: -1, dataLen: -1}
		if isTxnOp(t.req) {
			var rec *txn.Record
			d.resp, rec = sh.stage(t.req, groupBytes)
			if rec != nil {
				groupBytes += rec.EncodedSize()
				d.commit = len(sealed)
				sealed = append(sealed, *rec)
			}
		}
		results = append(results, d)
	}

	// Publish: one group write makes every commit in the batch durable
	// — under Rio, the instant it lands in protected cache memory.
	// Publish replaces the log wholesale, so a record left behind by an
	// earlier batch whose apply failed short of a crash must be rolled
	// forward first; dropping it unapplied would strand a partial state.
	var pubErr error
	published := false
	if len(sealed) > 0 && sh.logDirty && !sh.isDown() {
		if _, err := sh.txnLog().RecoverOpts(sh.recoverOpts()); err != nil {
			pubErr = err
			if crashed, _ := sh.sys.Crashed(); crashed {
				sh.setDown(true)
				sh.txns = nil
			}
		} else {
			sh.logDirty = false
		}
	}
	if len(sealed) > 0 && pubErr == nil {
		if pubErr = sh.txnLog().Publish(sealed); pubErr == nil {
			published = true
			sh.logDirty = true
		} else if crashed, _ := sh.sys.Crashed(); crashed {
			sh.setDown(true)
			sh.txns = nil
		}
	}

	// Apply: walk the batch in task order; commits roll their records
	// forward, everything else takes the ordinary handle path. A record
	// is resolved if it applied, or if it failed terminally — the tree's
	// shape rejected it before anything mutated, so it must not survive
	// in the log to be replayed as a commit its client was told failed.
	resolved := 0
	for i := range results {
		d := &results[i]
		switch {
		case d.resp != nil: // answered at stage time
		case d.commit >= 0:
			var outcome commitOutcome
			d.resp, outcome = sh.applyCommit(d.t.req, &sealed[d.commit], published, pubErr)
			if outcome != commitPending {
				resolved++
			}
		default:
			if d.t.wantFrame && d.t.req.Op == wire.OpRead {
				d.frame, d.resp, d.dataLen = sh.handleReadFrame(d.t.req)
			} else {
				d.resp = sh.handle(d.t.req)
			}
		}
	}

	// Erase: drop the log only when every published record has resolved
	// — fully applied, or terminally refused; anything short of that
	// leaves it in protected memory for warm reboot to roll forward.
	if published && resolved == len(sealed) && !sh.isDown() {
		if err := sh.txnLog().Erase(); err == nil {
			sh.logDirty = false
		} else if crashed, _ := sh.sys.Crashed(); crashed {
			sh.setDown(true)
			sh.txns = nil
		}
	}

	now := time.Now()
	sh.mu.Lock()
	sh.batches++
	sh.batchSum += uint64(len(batch))
	if len(batch) > sh.maxBatch {
		sh.maxBatch = len(batch)
	}
	for i := range results {
		d := &results[i]
		dataBytes := len(d.resp.Data)
		if d.dataLen > 0 {
			dataBytes = d.dataLen
		}
		sh.ops++
		sh.bytes += uint64(len(d.t.req.Data) + dataBytes)
		switch {
		case d.resp.Status == wire.StatusOK:
			switch d.t.req.Op {
			case wire.OpTxnCommit:
				sh.txnCommits++
			case wire.OpTxnAbort:
				sh.txnAborts++
			}
		case d.resp.Status.Retryable():
			sh.retried++
		default:
			sh.errors++
		}
		sh.lat.Observe(now.Sub(d.t.enq))
	}
	sh.mu.Unlock()
	for i := range results {
		d := &results[i]
		if d.commit >= 0 {
			sh.ackCommit(d.t, d.resp)
		} else {
			d.t.resp <- reply{resp: d.resp, frame: d.frame}
		}
	}
	// Clear the scratch before reuse: a retained frame pointer here
	// would alias a buffer the receiver has already released back to
	// the pool.
	for i := range results {
		results[i] = done{}
	}
	sh.results = results
}

// ackCommit delivers a commit's response to its waiting client. It
// exists as a named seam for the commitorder analyzer: in any function
// that touches commit records, the first ackCommit must come after the
// first Publish and the first Apply — never ack-before-publish.
func (sh *shard) ackCommit(t task, resp *wire.Response) {
	t.resp <- reply{resp: resp}
}

// isTxnOp reports whether req is handled by the staging path rather
// than handle(): the three transaction control ops, plus any data op
// carrying a transaction handle.
func isTxnOp(req *wire.Request) bool {
	switch req.Op {
	case wire.OpTxnBegin, wire.OpTxnCommit, wire.OpTxnAbort:
		return true
	}
	return req.Txn != 0
}

// txnLog returns the shard's commit log. Fetched per use rather than
// cached: a reboot can rebuild the machine's FS, and a cached handle
// would go stale.
func (sh *shard) txnLog() *txn.Log { return txn.NewLog(sh.sys.Machine().FS) }

// recoverOpts returns the Options a live shard recovers with: the crash
// probe lets recovery tell crash fallout (retryable, shard goes down)
// from a deterministic refusal (quarantine the record and move on)
// before it classifies an apply failure.
func (sh *shard) recoverOpts() txn.Options {
	return txn.Options{Crashed: func() bool {
		crashed, _ := sh.sys.Crashed()
		return crashed
	}}
}

// stage executes one transaction op's staging phase on the shard
// goroutine. It answers begin/abort/staged-op immediately (they touch
// only volatile server state) and returns a sealed record — with a nil
// response — for a non-empty commit, which serve() publishes and
// applies in its group-commit phases. groupBytes is the encoded size of
// records already sealed for this batch: a commit that would push the
// group past txn.MaxPublishBytes is deferred with wire.StatusAgain and
// its transaction stays open for a later, smaller batch.
func (sh *shard) stage(req *wire.Request, groupBytes int) (*wire.Response, *txn.Record) {
	ok := func() *wire.Response { return &wire.Response{ID: req.ID, Status: wire.StatusOK} }
	fail := func(st wire.Status, msg string) (*wire.Response, *txn.Record) {
		return &wire.Response{ID: req.ID, Status: st, Msg: msg}, nil
	}
	if sh.isDown() {
		return fail(wire.StatusAgain, fmt.Sprintf("shard %d down (crashed; awaiting warmboot)", sh.id))
	}
	switch req.Op {
	case wire.OpTxnBegin:
		if len(sh.txns) >= maxOpenTxns {
			return fail(wire.StatusTxnLimit,
				fmt.Sprintf("shard %d has %d transactions open", sh.id, len(sh.txns)))
		}
		if sh.txns == nil {
			sh.txns = make(map[uint32]*openTxn)
		}
		// Mint a handle, skipping zero (the "no transaction" value on
		// shard 0) and any sequence still open after wraparound.
		for {
			sh.txnSeq++
			if sh.txnSeq == 0 {
				sh.txnSeq = 1
			}
			if sh.txns[sh.txnSeq] == nil {
				break
			}
		}
		sh.txns[sh.txnSeq] = &openTxn{}
		r := ok()
		r.Size = int64(uint64(sh.id)<<32 | uint64(sh.txnSeq))
		return r, nil

	case wire.OpTxnAbort:
		if _, live := sh.txns[uint32(req.Txn)]; !live {
			return fail(wire.StatusNoTxn,
				fmt.Sprintf("no open transaction %d on shard %d", req.Txn, sh.id))
		}
		delete(sh.txns, uint32(req.Txn))
		return ok(), nil

	case wire.OpTxnCommit:
		tx, live := sh.txns[uint32(req.Txn)]
		if !live {
			return fail(wire.StatusNoTxn,
				fmt.Sprintf("no open transaction %d on shard %d", req.Txn, sh.id))
		}
		if len(tx.ops) == 0 {
			delete(sh.txns, uint32(req.Txn))
			return ok(), nil // nothing staged: commit is a no-op
		}
		rec := &txn.Record{ID: req.Txn, Ops: tx.ops}
		if int64(groupBytes+rec.EncodedSize()) > txn.MaxPublishBytes {
			// The log is one fs file; this batch's group already fills
			// it. Defer: the transaction stays open and the client
			// retries the commit against a later batch.
			return fail(wire.StatusAgain, fmt.Sprintf(
				"shard %d txn log group full (%d bytes staged); retry commit", sh.id, groupBytes))
		}
		delete(sh.txns, uint32(req.Txn))
		return nil, rec
	}

	// A staged data op.
	tx, live := sh.txns[uint32(req.Txn)]
	if !live {
		return fail(wire.StatusNoTxn,
			fmt.Sprintf("no open transaction %d on shard %d", req.Txn, sh.id))
	}
	op, errMsg := stagedOp(req)
	if errMsg != "" {
		return fail(wire.StatusInvalid, errMsg)
	}
	if len(tx.ops) >= maxTxnOps || tx.bytes+len(op.Data) > maxTxnBytes {
		return fail(wire.StatusTxnLimit, fmt.Sprintf(
			"transaction %d over limits (%d ops, %d bytes staged)", req.Txn, len(tx.ops), tx.bytes))
	}
	tx.ops = append(tx.ops, op)
	tx.bytes += len(op.Data)
	return ok(), nil
}

// stagedOp converts a wire request into the txn.Op it stages.
func stagedOp(req *wire.Request) (txn.Op, string) {
	switch req.Op {
	case wire.OpWrite:
		if req.Offset < 0 {
			return txn.Op{}, "append writes are not transactional (the final offset is unknowable at stage time)"
		}
		return txn.Op{Kind: txn.OpWrite, Path: req.Path, Off: req.Offset, Data: req.Data}, ""
	case wire.OpMkdir:
		return txn.Op{Kind: txn.OpMkdir, Path: req.Path}, ""
	case wire.OpRm:
		return txn.Op{Kind: txn.OpRemove, Path: req.Path}, ""
	case wire.OpMv:
		return txn.Op{Kind: txn.OpRename, Path: req.Path, Path2: req.Path2}, ""
	}
	return txn.Op{}, fmt.Sprintf("%v cannot run inside a transaction", req.Op)
}

// commitOutcome is applyCommit's verdict on one published record, which
// decides whether the group erase may run: a pending record must stay in
// the log for warm reboot to roll forward; an applied or terminal one is
// resolved and must not be replayed.
type commitOutcome uint8

const (
	commitPending  commitOutcome = iota // not applied; log keeps it for recovery
	commitApplied                       // fully applied
	commitTerminal                      // refused deterministically; client told, record dropped
)

// applyCommit rolls one published commit record forward on the shard's
// System. A record that was published but could not be applied because
// the shard went down — a crash earlier in the batch, or mid-apply —
// stays in the log (serve skips the erase), so warm reboot completes
// it: the client may see a retryable ambiguity, never a torn state. A
// record the tree's shape *deterministically* refuses (Apply's precheck
// fails, mutating nothing) is terminal: the client gets the typed error
// now, and the record must leave the log — retrying it forever would
// wedge the shard, and replaying it after the obstruction clears would
// apply a commit the client was told failed.
func (sh *shard) applyCommit(req *wire.Request, rec *txn.Record, published bool, pubErr error) (*wire.Response, commitOutcome) {
	fail := func(st wire.Status, msg string) *wire.Response {
		return &wire.Response{ID: req.ID, Status: st, Msg: msg}
	}
	if !published {
		if pubErr == nil {
			return fail(wire.StatusAgain, fmt.Sprintf("shard %d down; commit not published", sh.id)), commitPending
		}
		return fail(wire.StatusIO, "txn publish failed: "+pubErr.Error()), commitPending
	}
	if sh.isDown() {
		// A crash landed between the publish and this record's slot (an
		// admin crash earlier in the batch). The record is durable in
		// protected memory: warm reboot rolls it forward.
		return fail(wire.StatusAgain, fmt.Sprintf(
			"shard %d down; commit %d rolls forward at warmboot", sh.id, rec.ID)), commitPending
	}
	if err := sh.txnLog().Apply(rec); err != nil {
		if crashed, why := sh.sys.Crashed(); crashed {
			sh.setDown(true)
			sh.txns = nil
			return fail(wire.StatusAgain, fmt.Sprintf(
				"shard %d crashed applying commit: %s", sh.id, why)), commitPending
		}
		var ce *txn.CheckError
		if errors.As(err, &ce) {
			// Refused before anything mutated: atomic failure, typed
			// status, record resolved.
			st, msg := statusOf(err)
			return fail(st, msg), commitTerminal
		}
		if st, msg := statusOf(err); st != wire.StatusIO && st != wire.StatusNoSpace && st != wire.StatusReadOnly {
			// A shape-of-the-tree error precheck did not foresee. Still
			// terminal — it would recur on every replay — but something
			// may have mutated, so keep the record as evidence instead
			// of silently dropping it.
			if qerr := sh.txnLog().Quarantine(rec); qerr != nil {
				return fail(wire.StatusIO, "txn apply failed: "+msg+"; quarantine failed: "+qerr.Error()), commitPending
			}
			return fail(st, msg), commitTerminal
		}
		// Resource pressure or a degraded mount: the record stays in
		// the log and recovery will retry it, so the outcome is
		// ambiguous — answer retryable, never a definitive failure
		// that a later roll-forward could contradict.
		_, msg := statusOf(err)
		return fail(wire.StatusAgain, fmt.Sprintf(
			"shard %d commit %d deferred to recovery: %s", sh.id, rec.ID, msg)), commitPending
	}
	if crashed, why := sh.sys.Crashed(); crashed {
		sh.setDown(true)
		sh.txns = nil
		return fail(wire.StatusAgain, fmt.Sprintf(
			"shard %d crashed applying commit: %s", sh.id, why)), commitPending
	}
	resp := &wire.Response{ID: req.ID, Status: wire.StatusOK}
	resp.Size = int64(len(rec.Ops))
	return resp, commitApplied
}

// setDown flips the shard's outage flag (shard goroutine only).
func (sh *shard) setDown(v bool) {
	sh.mu.Lock()
	sh.down = v
	sh.mu.Unlock()
}

func (sh *shard) isDown() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.down
}

// handle executes one request against the shard's System. Runs only on
// the shard goroutine.
func (sh *shard) handle(req *wire.Request) *wire.Response {
	ok := func() *wire.Response { return &wire.Response{ID: req.ID, Status: wire.StatusOK} }
	fail := func(st wire.Status, msg string) *wire.Response {
		return &wire.Response{ID: req.ID, Status: st, Msg: msg}
	}

	switch req.Op {
	case wire.OpCrash:
		if sh.isDown() {
			return fail(wire.StatusInvalid, fmt.Sprintf("shard %d already down", sh.id))
		}
		sh.sys.Crash("riod: administrative crash op")
		sh.setDown(true)
		sh.txns = nil // staged transactions are volatile: they die with the shard
		sh.mu.Lock()
		sh.crashes++
		sh.mu.Unlock()
		return ok()

	case wire.OpWarmboot:
		// Legal on a healthy shard too: Rio supports a clean
		// administrative warm reboot.
		rep, err := sh.sys.WarmReboot()
		if err != nil {
			// Volume lost; the shard stays down rather than serve a
			// filesystem it cannot certify.
			sh.setDown(true)
			return fail(wire.StatusIO, "warm reboot failed: "+err.Error())
		}
		// Roll published-but-unerased transactions forward before taking
		// traffic: committed records complete, records the tree's shape
		// deterministically refuses are quarantined (they were never
		// acked, and retrying them forever would wedge the shard), torn
		// tails are discarded — no partially applied transaction is ever
		// visible and no single record can poison warmboot.
		if _, err := sh.txnLog().RecoverOpts(sh.recoverOpts()); err != nil {
			sh.setDown(true)
			return fail(wire.StatusIO, "txn roll-forward failed: "+err.Error())
		}
		sh.logDirty = false
		sh.setDown(false)
		sh.mu.Lock()
		sh.warmboots++
		sh.mu.Unlock()
		r := ok()
		r.Size = int64(rep.MetaRestored + rep.DataRestored)
		return r
	}

	if sh.isDown() {
		return fail(wire.StatusAgain, fmt.Sprintf("shard %d down (crashed; awaiting warmboot)", sh.id))
	}

	resp := sh.data(req)
	// A shard that crashed organically mid-request (it cannot inject
	// its own faults, but belt and braces) flips to the outage path so
	// later requests get the retryable status instead of nonsense.
	if crashed, why := sh.sys.Crashed(); crashed {
		sh.setDown(true)
		sh.txns = nil
		return fail(wire.StatusAgain, fmt.Sprintf("shard %d crashed serving request: %s", sh.id, why))
	}
	return resp
}

// data executes a data op. Runs only on the shard goroutine, only on a
// healthy shard.
func (sh *shard) data(req *wire.Request) *wire.Response { return Exec(sh.sys, req) }

// Exec executes one data op against sys and returns its response. It is
// the single op-to-filesystem translation both serving layers share: a
// Server's shard goroutine calls it for client requests, and a fleet
// replica calls it both when a primary serves a request and when a
// backup applies a replicated batch — the same function on the same op
// sequence is what makes a backup byte-identical to its primary. The
// caller owns the single-goroutine discipline for sys.
func Exec(sys *rio.System, req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	fail := func(err error) *wire.Response {
		resp.Status, resp.Msg = statusOf(err)
		return resp
	}

	switch req.Op {
	case wire.OpOpen:
		if _, err := sys.Stat(req.Path); err == nil {
			return resp
		} else if !rio.IsNotExist(err) {
			return fail(err)
		}
		f, err := execCreate(sys, req.Path)
		if err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}

	case wire.OpRead:
		// Lookup+ReadInoAt instead of Stat+Open+ReadAt+Close: one path
		// resolution instead of three, no handle allocation, and the
		// read copies cache frames directly into buf (Cache.ReadDirect)
		// rather than bouncing through the kernel staging area.
		ino, size, isDir, err := sys.Lookup(req.Path)
		if err != nil {
			return fail(err)
		}
		if isDir {
			return fail(rio.ErrIsDir)
		}
		if req.Offset < 0 {
			resp.Status, resp.Msg = wire.StatusInvalid, "negative read offset"
			return resp
		}
		resp.Size = size
		want := int64(req.Len)
		if want == 0 || want > wire.MaxData {
			want = wire.MaxData
		}
		if remain := size - req.Offset; remain < want {
			want = remain
		}
		if want <= 0 {
			return resp
		}
		buf := make([]byte, want)
		n, err := sys.ReadInoAt(ino, buf, req.Offset)
		if err != nil {
			return fail(err)
		}
		resp.Data = buf[:n]

	case wire.OpWrite:
		ino, size, isDir, err := sys.Lookup(req.Path)
		switch {
		case err == nil:
			// Hot path: the file exists, so the write needs no handle —
			// Lookup resolved the inode and (for appends) the size in
			// one walk.
			if isDir {
				return fail(rio.ErrIsDir)
			}
			off := req.Offset
			if off < 0 {
				off = size
			}
			n, werr := sys.WriteInoAt(ino, req.Data, off)
			resp.Size = int64(n)
			if werr != nil {
				return fail(werr)
			}
		case rio.IsNotExist(err):
			f, err := execCreate(sys, req.Path)
			if err != nil {
				return fail(err)
			}
			off := req.Offset
			if off < 0 {
				off = 0 // a just-created file is empty
			}
			n, werr := f.WriteAt(req.Data, off)
			cerr := f.Close()
			resp.Size = int64(n)
			if werr != nil {
				return fail(werr)
			}
			if cerr != nil {
				return fail(cerr)
			}
		default:
			return fail(err)
		}

	case wire.OpMkdir:
		if err := MkdirAll(sys, req.Path); err != nil {
			return fail(err)
		}

	case wire.OpRm:
		if err := sys.Remove(req.Path); err != nil {
			return fail(err)
		}

	case wire.OpMv:
		if err := sys.Rename(req.Path, req.Path2); err != nil {
			return fail(err)
		}

	case wire.OpStat:
		st, err := sys.Stat(req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Size = st.Size
		if st.IsDir {
			resp.Flags |= wire.FlagDir
		}
		if st.IsSymlink {
			resp.Flags |= wire.FlagSymlink
		}

	case wire.OpSync:
		sys.Sync()

	default:
		resp.Status = wire.StatusInvalid
		resp.Msg = fmt.Sprintf("op %v not servable", req.Op)
	}
	return resp
}

// execCreate makes path, materialising missing parent directories
// first. Each shard is its own filesystem, so a directory tree exists
// per-shard: creating /smoke/f01 on shard 3 creates shard 3's /smoke.
// Open and write therefore have mkdir-p semantics — a path-keyed store
// where a key's parents are namespace bookkeeping, not client state.
func execCreate(sys *rio.System, path string) (*rio.File, error) {
	f, err := sys.Create(path)
	if err != rio.ErrNotFound {
		return f, err
	}
	if err := MkdirAll(sys, parentDir(path)); err != nil {
		return nil, err
	}
	return sys.Create(path)
}

// MkdirAll creates path and any missing parents (mkdir -p).
func MkdirAll(sys *rio.System, path string) error {
	if path == "" || path == "/" {
		return nil
	}
	if st, err := sys.Stat(path); err == nil {
		if st.IsDir {
			return nil
		}
		return rio.ErrNotDir
	}
	if err := MkdirAll(sys, parentDir(path)); err != nil {
		return err
	}
	if err := sys.Mkdir(path); err != nil && err != rio.ErrExists {
		return err
	}
	return nil
}

// parentDir returns path's parent ("/a/b" -> "/a", "/a" -> "/").
func parentDir(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}

// statusOf maps the public rio error codes onto wire statuses. It
// unwraps, because txn apply errors arrive wrapped with their record
// and op context.
func statusOf(err error) (wire.Status, string) {
	switch {
	case err == nil:
		return wire.StatusOK, ""
	case errors.Is(err, rio.ErrNotFound):
		return wire.StatusNotFound, err.Error()
	case errors.Is(err, rio.ErrExists):
		return wire.StatusExists, err.Error()
	case errors.Is(err, rio.ErrIsDir):
		return wire.StatusIsDir, err.Error()
	case errors.Is(err, rio.ErrNotDir):
		return wire.StatusNotDir, err.Error()
	case errors.Is(err, rio.ErrNotEmpty):
		return wire.StatusNotEmpty, err.Error()
	case errors.Is(err, rio.ErrNoSpace), errors.Is(err, rio.ErrNoInodes):
		return wire.StatusNoSpace, err.Error()
	case errors.Is(err, rio.ErrReadOnly):
		return wire.StatusReadOnly, err.Error()
	default:
		return wire.StatusIO, err.Error()
	}
}
