package ioretry

import (
	"errors"
	"testing"

	"rio/internal/disk"
	"rio/internal/sim"
)

// faultyOp fails with err for the first n calls, then succeeds.
func faultyOp(n int, err error) func() error {
	calls := 0
	return func() error {
		calls++
		if calls <= n {
			return err
		}
		return nil
	}
}

// transientErr / latentErr produce real disk errors of each class by
// driving a tiny disk with a saturating fault plan.
func transientErr(t *testing.T) error {
	t.Helper()
	d := disk.New(4*disk.SectorSize, disk.DefaultParams())
	d.SetFaultPlan(&disk.FaultPlan{Seed: 1, TransientWrite: 1})
	_, err := d.Write(0, make([]byte, disk.SectorSize))
	if !disk.IsTransient(err) {
		t.Fatalf("setup: %v", err)
	}
	return err
}

func latentErr(t *testing.T) error {
	t.Helper()
	d := disk.New(4*disk.SectorSize, disk.DefaultParams())
	d.SetFaultPlan(&disk.FaultPlan{Seed: 1, LatentRate: 1})
	_, err := d.Read(0, make([]byte, disk.SectorSize))
	if !disk.IsLatent(err) {
		t.Fatalf("setup: %v", err)
	}
	return err
}

func TestRetrySucceedsWithinBound(t *testing.T) {
	clk := &sim.Clock{}
	r := New(Policy{MaxRetries: 3, BaseDelay: sim.Millisecond, MaxDelay: 8 * sim.Millisecond, Budget: 5}, clk)
	if err := r.Do(faultyOp(2, transientErr(t))); err != nil {
		t.Fatalf("2 transient failures under MaxRetries=3 should succeed: %v", err)
	}
	if r.Stats.Retries != 2 || r.Stats.RetrySuccesses != 1 || r.Stats.Failures != 0 {
		t.Fatalf("stats %+v", r.Stats)
	}
	// Backoff 1ms + 2ms advanced the simulated clock.
	if got, want := clk.Now(), sim.Time(0).Add(3*sim.Millisecond); got != want {
		t.Fatalf("clock at %v, want %v", got, want)
	}
}

func TestRetryExhaustionChargesBudget(t *testing.T) {
	r := New(Policy{MaxRetries: 2, BaseDelay: sim.Millisecond, Budget: 2}, nil)
	terr := transientErr(t)
	if err := r.Do(func() error { return terr }); !disk.IsTransient(err) {
		t.Fatalf("want transient error through, got %v", err)
	}
	if r.Stats.Retries != 2 || r.Stats.Failures != 1 {
		t.Fatalf("stats %+v", r.Stats)
	}
	if r.Degraded() {
		t.Fatal("degraded after 1 failure with budget 2")
	}
	if r.BudgetRemaining() != 1 {
		t.Fatalf("budget remaining %d", r.BudgetRemaining())
	}
	r.Do(func() error { return terr })
	if !r.Degraded() || r.BudgetRemaining() != 0 {
		t.Fatalf("budget 2 not exhausted after 2 failures: remaining %d", r.BudgetRemaining())
	}
}

func TestLatentNotRetried(t *testing.T) {
	lerr := latentErr(t)
	r := New(Policy{MaxRetries: 5, BaseDelay: sim.Millisecond, Budget: 10}, nil)
	calls := 0
	err := r.Do(func() error { calls++; return lerr })
	if !disk.IsLatent(err) {
		t.Fatalf("got %v", err)
	}
	if calls != 1 {
		t.Fatalf("latent error retried %d times", calls-1)
	}
	if r.Stats.LatentFailures != 1 || r.Stats.Retries != 0 {
		t.Fatalf("stats %+v", r.Stats)
	}
}

func TestNonDiskErrorNotRetried(t *testing.T) {
	boom := errors.New("not a disk error")
	r := New(DefaultPolicy(), nil)
	calls := 0
	if err := r.Do(func() error { calls++; return boom }); err != boom {
		t.Fatalf("got %v", err)
	}
	if calls != 1 {
		t.Fatal("non-disk error was retried")
	}
}

func TestBackoffCapsAtMaxDelay(t *testing.T) {
	clk := &sim.Clock{}
	r := New(Policy{MaxRetries: 6, BaseDelay: sim.Millisecond, MaxDelay: 4 * sim.Millisecond, Budget: 0}, clk)
	r.Do(func() error { return transientErr(t) })
	// Delays: 1, 2, 4, 4, 4, 4 = 19ms.
	if got, want := clk.Now(), sim.Time(0).Add(19*sim.Millisecond); got != want {
		t.Fatalf("clock at %v, want %v", got, want)
	}
}

func TestZeroBudgetNeverDegrades(t *testing.T) {
	r := New(Policy{MaxRetries: 0, Budget: 0}, nil)
	terr := transientErr(t)
	for i := 0; i < 100; i++ {
		r.Do(func() error { return terr })
	}
	if r.Degraded() {
		t.Fatal("unlimited budget degraded")
	}
	if r.BudgetRemaining() != -1 {
		t.Fatalf("remaining %d", r.BudgetRemaining())
	}
}

func TestOnDegradeFiresOnce(t *testing.T) {
	r := New(Policy{MaxRetries: 0, Budget: 1}, nil)
	fired := 0
	r.OnDegrade(func() { fired++ })
	terr := transientErr(t)
	r.Do(func() error { return terr })
	r.Do(func() error { return terr })
	if fired != 1 {
		t.Fatalf("OnDegrade fired %d times", fired)
	}
}

// TestAgainstRealFaultyDisk drives a Retrier over an actual disk with a
// moderate transient rate and checks every write eventually lands.
func TestAgainstRealFaultyDisk(t *testing.T) {
	d := disk.New(256*disk.SectorSize, disk.DefaultParams())
	d.SetFaultPlan(&disk.FaultPlan{Seed: 9, TransientWrite: 0.3, TransientRead: 0.3})
	clk := &sim.Clock{}
	r := New(Policy{MaxRetries: 8, BaseDelay: sim.Millisecond, MaxDelay: 16 * sim.Millisecond, Budget: 0}, clk)
	payload := make([]byte, disk.SectorSize)
	for i := 0; i < 100; i++ {
		payload[0] = byte(i)
		s := i % 200
		if err := r.Do(func() error { _, err := d.Write(s, payload); return err }); err != nil {
			t.Fatalf("write %d never landed: %v", i, err)
		}
	}
	d.SetFaultPlan(nil)
	buf := make([]byte, disk.SectorSize)
	for i := 0; i < 100; i++ {
		d.Read(i%200, buf)
	}
	if r.Stats.Retries == 0 {
		t.Fatal("30% transient rate produced zero retries")
	}
	if r.Stats.Failures != 0 {
		t.Fatalf("unexpected ultimate failures: %+v", r.Stats)
	}
}
