package rio

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := New(Config{Policy: PolicyRio})
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Stats().DiskBytesWritten // mkfs formatting counts as writes
	data := []byte("safe the instant the write returns")
	if err := sys.WriteFile("/notes", data); err != nil {
		t.Fatal(err)
	}
	if st := sys.Stats(); st.DiskBytesWritten != base {
		t.Fatalf("Rio wrote %d bytes to disk", st.DiskBytesWritten-base)
	}
	sys.Crash("power button")
	if ok, _ := sys.Crashed(); !ok {
		t.Fatal("not crashed")
	}
	rep, err := sys.WarmReboot()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataRestored == 0 || !rep.FsckClean {
		t.Fatalf("reboot report: %+v", rep)
	}
	got, err := sys.ReadFile("/notes")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data lost: %q, %v", got, err)
	}
}

func TestColdRebootLosesRioData(t *testing.T) {
	sys, _ := New(Config{Policy: PolicyRio})
	sys.WriteFile("/gone", []byte("x"))
	sys.Crash("test")
	if err := sys.ColdReboot(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ReadFile("/gone"); !IsNotExist(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteThroughSurvivesColdReboot(t *testing.T) {
	sys, _ := New(Config{Policy: PolicyUFSWTWrite})
	sys.WriteFile("/kept", []byte("on disk"))
	sys.Crash("test")
	if err := sys.ColdReboot(); err != nil {
		t.Fatal(err)
	}
	got, err := sys.ReadFile("/kept")
	if err != nil || string(got) != "on disk" {
		t.Fatalf("%q, %v", got, err)
	}
}

func TestAllPoliciesBoot(t *testing.T) {
	for _, p := range Policies() {
		sys, err := New(Config{Policy: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := sys.WriteFile("/f", []byte("hello")); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got, err := sys.ReadFile("/f")
		if err != nil || string(got) != "hello" {
			t.Fatalf("%v: %q %v", p, got, err)
		}
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	if _, err := New(Config{Policy: "zfs"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFileHandleAPI(t *testing.T) {
	sys, _ := New(Config{})
	f, err := sys.Create("/file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("X"), 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	sz, err := f.Size()
	if err != nil || sz != 3 {
		t.Fatalf("size %d %v", sz, err)
	}
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "aXc" {
		t.Fatalf("got %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and stream-read.
	g, err := sys.Open("/file")
	if err != nil {
		t.Fatal(err)
	}
	n, err := g.Read(buf)
	if err != nil || n != 3 {
		t.Fatalf("read %d %v", n, err)
	}
	g.Close()
}

func TestDirectoryAPI(t *testing.T) {
	sys, _ := New(Config{})
	if err := sys.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	sys.WriteFile("/d/a", []byte("1"))
	sys.WriteFile("/d/b", []byte("22"))
	ents, err := sys.ReadDir("/d")
	if err != nil || len(ents) != 2 {
		t.Fatalf("%v %v", ents, err)
	}
	if err := sys.Rename("/d/a", "/d/c"); err != nil {
		t.Fatal(err)
	}
	st, err := sys.Stat("/d/c")
	if err != nil || st.Size != 1 {
		t.Fatalf("%+v %v", st, err)
	}
	if err := sys.Remove("/d/b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Remove("/d/c"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Remove("/d"); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileReplaces(t *testing.T) {
	sys, _ := New(Config{})
	sys.WriteFile("/f", []byte("old content longer"))
	sys.WriteFile("/f", []byte("new"))
	got, _ := sys.ReadFile("/f")
	if string(got) != "new" {
		t.Fatalf("got %q", got)
	}
}

func TestStatsProgress(t *testing.T) {
	sys, _ := New(Config{Policy: PolicyUFSWTWrite})
	before := sys.Stats()
	sys.WriteFile("/f", make([]byte, 20000))
	after := sys.Stats()
	if after.Syscalls <= before.Syscalls {
		t.Fatal("syscalls did not advance")
	}
	if after.DiskWrites <= before.DiskWrites {
		t.Fatal("write-through did no disk writes")
	}
	if after.SimulatedSeconds <= before.SimulatedSeconds {
		t.Fatal("simulated time did not advance")
	}
	if sys.Elapsed() <= 0 {
		t.Fatal("elapsed not positive")
	}
}

func TestInjectFaultRequiresInterpreted(t *testing.T) {
	sys, _ := New(Config{}) // fast path
	if err := sys.InjectFault(FaultCopyOverrun); err == nil {
		t.Fatal("fault injection allowed on fast path")
	}
}

func TestInjectFaultEndToEnd(t *testing.T) {
	// A protected Rio machine with a copy-overrun fault armed must
	// eventually halt via the protection trap; after warm reboot all
	// previously written data is intact.
	sys, err := New(Config{Policy: PolicyRio, Interpreted: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sys.WriteFile("/precious", []byte("do not lose"))
	if err := sys.InjectFault(FaultCopyOverrun); err != nil {
		t.Fatal(err)
	}
	crashed := false
	for i := 0; i < 3000 && !crashed; i++ {
		sys.WriteFile("/churn", bytes.Repeat([]byte{byte(i)}, 4000))
		crashed, _ = sys.Crashed()
	}
	if !crashed {
		t.Skip("fault did not trigger within budget (seed-dependent)")
	}
	sys.Crash("finish") // completes crash I/O
	rep, err := sys.WarmReboot()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumMismatches != 0 {
		t.Fatalf("protection let corruption through: %+v", rep)
	}
	got, err := sys.ReadFile("/precious")
	if err != nil || string(got) != "do not lose" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestUnknownFaultRejected(t *testing.T) {
	sys, _ := New(Config{Interpreted: true})
	if err := sys.InjectFault("cosmic-ray"); err == nil {
		t.Fatal("unknown fault accepted")
	}
	if _, err := CrashOnce(1, "cosmic-ray", 1); err == nil {
		t.Fatal("unknown fault accepted by CrashOnce")
	}
}

func TestCrashOnce(t *testing.T) {
	res, err := CrashOnce(2, FaultCopyOverrun, 77)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed && res.CrashKind == "" {
		t.Fatal("crashed without a kind")
	}
}

func TestFaultTypesComplete(t *testing.T) {
	if len(FaultTypes()) != 13 {
		t.Fatalf("%d fault types, want 13", len(FaultTypes()))
	}
	for _, ft := range FaultTypes() {
		if _, ok := faultMap[ft]; !ok {
			t.Fatalf("fault %q unmapped", ft)
		}
	}
}

func TestMiniCrashCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	res, err := RunCrashCampaign(CampaignOptions{RunsPerCell: 1, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "Total") {
		t.Fatalf("table:\n%s", tbl)
	}
	for _, sysIdx := range []int{SystemDiskWT, SystemRioNoProt, SystemRioProt} {
		crashes, corrupted := res.Totals(sysIdx)
		if crashes == 0 {
			t.Fatalf("system %d: no crashes", sysIdx)
		}
		if corrupted > crashes {
			t.Fatal("impossible corruption count")
		}
	}
	_ = res.ProtectionInvocations()
	_ = res.MTTFYears(SystemDiskWT)
	// Without DiskFaults the recovery columns render but stay zero.
	if rt := res.RecoveryTable(); !strings.Contains(rt, "volume-lost") {
		t.Fatalf("recovery table malformed:\n%s", rt)
	}
	if sum := res.Summary(); sum.RecoveryInterrupted != 0 {
		t.Fatalf("second crash injected without DiskFaults: %+v", sum)
	}
	if res.CrashKindBreakdown(SystemRioProt) == "" {
		t.Fatal("empty breakdown")
	}
	sum := res.Summary()
	if sum.Runs == 0 || sum.Crashes == 0 || sum.Workers != 4 {
		t.Fatalf("summary not populated: %+v", sum)
	}
	if sum.Runs != sum.Crashes+sum.Discarded+sum.Errors {
		t.Fatalf("summary accounting broken: %+v", sum)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"cells"`) || !strings.Contains(string(data), `"summary"`) {
		t.Fatalf("JSON export malformed:\n%.200s", data)
	}
}

func TestPerfTableSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("perf table is slow")
	}
	res, err := RunPerfTable(PerfOptions{Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	sp := res.Speedups()
	if sp.VsWriteThroughWrite[0] < 2 {
		t.Fatalf("write-through speedup %.1f implausibly low", sp.VsWriteThroughWrite[0])
	}
	if !strings.Contains(res.Table(), "Rio with protection") {
		t.Fatal("table malformed")
	}
}

func TestProtectionOverheadAPI(t *testing.T) {
	w, p, err := ProtectionOverhead(PerfOptions{Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if p < w || float64(p) > 1.1*float64(w) {
		t.Fatalf("overhead out of band: %v -> %v", w, p)
	}
}

func TestSymlinkPublicAPI(t *testing.T) {
	sys, _ := New(Config{})
	sys.WriteFile("/target", []byte("linked data"))
	if err := sys.Symlink("/target", "/link"); err != nil {
		t.Fatal(err)
	}
	got, err := sys.ReadFile("/link")
	if err != nil || string(got) != "linked data" {
		t.Fatalf("%q %v", got, err)
	}
	tgt, err := sys.Readlink("/link")
	if err != nil || tgt != "/target" {
		t.Fatalf("%q %v", tgt, err)
	}
	lst, err := sys.Lstat("/link")
	if err != nil || !lst.IsSymlink {
		t.Fatalf("%+v %v", lst, err)
	}
	st, err := sys.Stat("/link")
	if err != nil || st.IsSymlink {
		t.Fatalf("stat should follow: %+v %v", st, err)
	}
	ents, err := sys.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	marked := false
	for _, e := range ents {
		if e.Name == "link" && e.IsSymlink {
			marked = true
		}
	}
	if !marked {
		t.Fatal("readdir does not mark symlink")
	}
	if err := sys.Remove("/link"); err != nil {
		t.Fatal(err)
	}
}

func TestUPSPublicAPI(t *testing.T) {
	sys, _ := New(Config{Policy: PolicyRio})
	if err := sys.AttachUPS(); err != nil {
		t.Fatal(err)
	}
	sys.WriteFile("/survives-outage", []byte("battery powered"))
	battery, err := sys.PowerFail()
	if err != nil {
		t.Fatal(err)
	}
	if battery <= 0 {
		t.Fatal("no battery time")
	}
	rep, err := sys.RecoverFromUPS()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataRestored == 0 {
		t.Fatalf("nothing restored: %+v", rep)
	}
	got, err := sys.ReadFile("/survives-outage")
	if err != nil || string(got) != "battery powered" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestPowerFailWithoutUPS(t *testing.T) {
	sys, _ := New(Config{Policy: PolicyRio})
	sys.WriteFile("/f", []byte("x"))
	if _, err := sys.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RecoverFromUPS(); err == nil {
		t.Fatal("recover without UPS allowed")
	}
	if err := sys.ColdReboot(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ReadFile("/f"); !IsNotExist(err) {
		t.Fatalf("data survived without UPS: %v", err)
	}
}
