// Fixture: fully checked decodes wirebounds must NOT flag — lengths
// compared against both the protocol maximum and the remaining bytes
// before use, small self-bounded widths (u8/u16), loop counters that
// never touch a slice or allocation, and an annotated decoder whose
// blob carries no maximum by design.
package wire

import (
	"encoding/binary"
	"errors"
)

var (
	errTruncated = errors.New("truncated")
	errTooBig    = errors.New("too big")
)

const maxData = 1 << 20

// decodeChecked is the canonical shape: maximum first, remaining bytes
// second, then the slice.
func decodeChecked(buf []byte) ([]byte, error) {
	n := binary.BigEndian.Uint32(buf)
	if n > maxData {
		return nil, errTooBig
	}
	if uint32(len(buf)) < 4+n {
		return nil, errTruncated
	}
	return buf[4 : 4+n], nil
}

// allocChecked bounds the size before allocating, against a caller-
// supplied maximum (a parameter is a legitimate bound).
func allocChecked(hdr []byte, max uint32) ([]byte, error) {
	n := binary.BigEndian.Uint32(hdr)
	if n > max {
		return nil, errTooBig
	}
	return make([]byte, n), nil
}

type cur struct {
	buf []byte
	err error
}

func (c *cur) take(n int) []byte {
	if n < 0 || n > len(c.buf) {
		c.err = errTruncated
		return nil
	}
	b := c.buf[:n]
	c.buf = c.buf[n:]
	return b
}

func (c *cur) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (c *cur) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// str reads a u16-prefixed string: 16 bits cannot exceed any protocol
// maximum worth having, so take's remaining-bytes check suffices.
func (c *cur) str() string {
	n := c.u16()
	return string(c.take(int(n)))
}

// blobChecked pins the u32 length to the protocol maximum before take.
func (c *cur) blobChecked() ([]byte, error) {
	n := int(c.u32())
	if n > maxData {
		return nil, errTooBig
	}
	return c.take(n), nil
}

// countOnly decodes a record count used purely as a loop bound: no
// slice, no allocation, nothing to flag.
func countOnly(buf []byte) int {
	n := binary.BigEndian.Uint32(buf)
	total := 0
	for i := uint32(0); i < n; i++ {
		total++
	}
	return total
}

// fileRecord reads a whole-file record: its blob carries no protocol
// maximum by design, and says so.
func (c *cur) fileRecord() []byte {
	//riolint:wirebounds fixture record length is bounded by the blob's remaining bytes by design
	return c.take(int(c.u32()))
}
