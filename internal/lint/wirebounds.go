package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Wirebounds audits the decode paths of the wire protocol and the
// fleet's RFL1/RSN1 codecs: every length decoded off the network must be
// validated against BOTH its protocol maximum and the bytes actually
// remaining before it drives an allocation or a slice. The two checks
// fail differently — a missing remaining-bytes check is a panic on a
// truncated frame, a missing maximum is a 4 GiB allocation from a
// 20-byte frame — and history keeps producing decoders with exactly one
// of the two.
//
// Mechanics: a value is tainted when it comes from encoding/binary's
// Uint16/Uint32/Uint64 or from the module's own u8/u16/u32/u64 reader
// methods, and the decoded width follows it through conversions and
// assignments. Before a tainted value may appear in a slice bound it
// needs a prior comparison against len(...); before a ≥32-bit one may
// size a make() it needs a prior comparison against a constant, a
// parameter, or a package-level bound; passing one to a take-style
// function (one that bounds a parameter against len of its remaining
// buffer — detected from the callee's own body, interprocedurally)
// satisfies the remaining-bytes half but still demands the maximum for
// ≥32-bit widths. u8/u16 values are small enough that the type is its
// own maximum.
//
// A decoder whose blob carries no protocol maximum by design carries
// //riolint:wirebounds <reason>.
var Wirebounds = &Analyzer{
	Name:      "wirebounds",
	Directive: "wirebounds",
	Doc:       "decoded lengths must be checked against their protocol maximum and the remaining buffer before any allocation or slice",
	Run:       runWirebounds,
}

// wireboundsPackages scopes the analyzer to codec code.
var wireboundsPackages = map[string]bool{"wire": true, "fleet": true}

func runWirebounds(p *Pass) {
	if !wireboundsPackages[p.Pkg.Name] {
		return
	}
	takerMemo := make(map[*types.Func]map[int]bool)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkWireFunc(p, fd, takerMemo)
			}
		}
	}
}

// decodeWidth returns the bit width a call decodes, or 0.
func decodeWidth(info *types.Info, call *ast.CallExpr) int {
	callee := staticCallee(info, call)
	if callee == nil {
		return 0
	}
	name := callee.Name()
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "encoding/binary" {
		switch name {
		case "Uint16":
			return 16
		case "Uint32":
			return 32
		case "Uint64":
			return 64
		}
		return 0
	}
	switch name {
	case "u8":
		return 8
	case "u16":
		return 16
	case "u32":
		return 32
	case "u64":
		return 64
	}
	return 0
}

func checkWireFunc(p *Pass, fd *ast.FuncDecl, takerMemo map[*types.Func]map[int]bool) {
	info := p.Pkg.Info
	widths := make(map[types.Object]int)

	paramObjs := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					paramObjs[obj] = true
				}
			}
		}
	}

	// exprWidth: the widest decoded value reachable in e.
	var exprWidth func(e ast.Expr) int
	exprWidth = func(e ast.Expr) int {
		w := 0
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if dw := decodeWidth(info, x); dw > w {
					w = dw
				}
			case *ast.Ident:
				if obj := info.ObjectOf(x); obj != nil && widths[obj] > w {
					w = widths[obj]
				}
			}
			return true
		})
		return w
	}

	// Two passes propagate widths through assignment chains.
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue // field stores leave the tracked window
				}
				obj := info.ObjectOf(id)
				if obj == nil {
					continue
				}
				if w := exprWidth(as.Rhs[i]); w > widths[obj] {
					widths[obj] = w
				}
			}
			return true
		})
	}

	// qualifiesMax: the comparison's other operand pins a bound that is
	// not itself derived inside this body — a literal, a constant, a
	// parameter, or a package-level limit.
	qualifiesMax := func(e ast.Expr) bool {
		ok := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BasicLit:
				ok = true
			case *ast.Ident:
				switch obj := info.ObjectOf(x).(type) {
				case *types.Const:
					ok = true
				case *types.Var:
					if paramObjs[obj] || obj.Parent() == p.Pkg.Types.Scope() {
						ok = true
					}
				}
			}
			return true
		})
		return ok
	}
	containsLen := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
					if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
						found = true
					}
				}
			}
			return true
		})
		return found
	}

	// Collect the comparisons each tainted object is subjected to.
	lenChecks := make(map[types.Object][]token.Pos)
	maxChecks := make(map[types.Object][]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		record := func(side, other ast.Expr) {
			ast.Inspect(side, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.ObjectOf(id)
				if obj == nil || widths[obj] == 0 {
					return true
				}
				switch {
				case containsLen(other):
					lenChecks[obj] = append(lenChecks[obj], be.Pos())
				case qualifiesMax(other):
					maxChecks[obj] = append(maxChecks[obj], be.Pos())
				}
				return true
			})
		}
		record(be.X, be.Y)
		record(be.Y, be.X)
		return true
	})

	checkedBefore := func(checks map[types.Object][]token.Pos, obj types.Object, use token.Pos) bool {
		for _, pos := range checks[obj] {
			if pos < use {
				return true
			}
		}
		return false
	}

	// taintedIn finds the decoded values inside a use expression: named
	// ones (prior checks may cover them) and anonymous decode calls
	// (which cannot have been checked at all).
	type taintedVal struct {
		obj   types.Object // nil for an anonymous decode result
		width int
		name  string
	}
	taintedIn := func(e ast.Expr) []taintedVal {
		var out []taintedVal
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if obj := info.ObjectOf(x); obj != nil && widths[obj] > 0 {
					out = append(out, taintedVal{obj: obj, width: widths[obj], name: x.Name})
				}
			case *ast.CallExpr:
				if w := decodeWidth(info, x); w > 0 {
					out = append(out, taintedVal{width: w, name: types.ExprString(x)})
					return false
				}
			}
			return true
		})
		return out
	}

	report := func(use token.Pos, v taintedVal, missLen, missMax bool, what string) {
		needMax := missMax && v.width >= 32
		switch {
		case missLen && needMax:
			p.Reportf(use,
				"decoded u%d length %s %s with no bounds check at all: compare it against the remaining bytes (len) and a protocol maximum first",
				v.width, v.name, what)
		case missLen:
			p.Reportf(use,
				"decoded length %s %s without a remaining-bytes check; a truncated frame panics here — compare against len(...) first",
				v.name, what)
		case needMax:
			p.Reportf(use,
				"decoded u%d length %s %s without a protocol-maximum bound; an adversarial frame can declare any size it likes",
				v.width, v.name, what)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{x.Low, x.High, x.Max} {
				if bound == nil {
					continue
				}
				for _, v := range taintedIn(bound) {
					missLen := v.obj == nil || !checkedBefore(lenChecks, v.obj, x.Pos())
					missMax := v.obj == nil || !checkedBefore(maxChecks, v.obj, x.Pos())
					report(x.Pos(), v, missLen, missMax, "slices the buffer")
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					for _, sz := range x.Args[1:] {
						for _, v := range taintedIn(sz) {
							missMax := v.obj == nil || !checkedBefore(maxChecks, v.obj, x.Pos())
							report(x.Pos(), v, false, missMax, "sizes an allocation")
						}
					}
					return true
				}
			}
			callee := staticCallee(info, x)
			if callee == nil {
				return true
			}
			takers := takerParamsOf(p, callee, takerMemo)
			if len(takers) == 0 {
				return true
			}
			sig := callee.Type().(*types.Signature)
			np := sig.Params().Len()
			for i, arg := range x.Args {
				pi := i
				if sig.Variadic() && pi >= np-1 {
					pi = np - 1
				}
				if !takers[pi] {
					continue
				}
				for _, v := range taintedIn(arg) {
					missMax := v.obj == nil || !checkedBefore(maxChecks, v.obj, x.Pos())
					report(x.Pos(), v, false, missMax,
						fmt.Sprintf("reaches %s (which only checks the remaining bytes)", callee.Name()))
				}
			}
		}
		return true
	})
}

// takerParamsOf detects take-style callees from their own bodies: a
// parameter the callee compares against len(...) is bounded by the
// remaining buffer inside the callee, so the caller owes only the
// protocol maximum.
func takerParamsOf(p *Pass, fn *types.Func, memo map[*types.Func]map[int]bool) map[int]bool {
	if got, ok := memo[fn]; ok {
		return got
	}
	out := map[int]bool{}
	memo[fn] = out
	if p.Prog == nil {
		return out
	}
	node := p.Prog.funcs[fn]
	if node == nil {
		return out
	}
	info := node.Pkg.Info
	idx := 0
	params := make(map[types.Object]int)
	if node.Decl.Type.Params != nil {
		for _, field := range node.Decl.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = idx
				}
				idx++
			}
		}
	}
	mentions := func(e ast.Expr, obj types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
			}
			return true
		})
		return found
	}
	hasLen := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
					found = true
				}
			}
			return true
		})
		return found
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		for obj, pi := range params {
			if (mentions(be.X, obj) && hasLen(be.Y)) || (mentions(be.Y, obj) && hasLen(be.X)) {
				out[pi] = true
			}
		}
		return true
	})
	return out
}
