// Package perf reproduces Table 2 of the paper: the running time of three
// workloads (cp+rm, Sdet, Andrew) under eight file-system configurations
// with different data-permanence guarantees, plus the two in-text
// performance claims (protection is essentially free; code patching costs
// 20-50%).
//
// Absolute times come from a parameterised 1996-era cost model
// (disk.DefaultParams, fs.DefaultCosts) — the reproduction target is the
// paper's *shape*: Rio runs at memory-file-system speed, 4-22x the
// write-through systems, 2-14x default UFS, and 1-3x the delayed-write
// UFS, while providing write-through reliability.
package perf

import (
	"fmt"
	"strings"

	"rio/internal/disk"
	"rio/internal/fs"
	"rio/internal/machine"
	"rio/internal/sim"
	"rio/internal/workload"
)

// Config parameterises a Table 2 run.
type Config struct {
	Seed   uint64
	CpRm   *workload.CpRm
	Sdet   *workload.Sdet
	Andrew *workload.Andrew

	Costs      fs.Costs
	DiskParams disk.Params

	// Progress, if non-nil, receives a line per completed cell.
	Progress func(string)
}

// DefaultConfig returns the standard scaled-down configuration.
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		CpRm:       workload.DefaultCpRm(),
		Sdet:       workload.DefaultSdet(),
		Andrew:     workload.DefaultAndrew(),
		Costs:      fs.DefaultCosts(),
		DiskParams: disk.DefaultParams(),
	}
}

// RowSpec describes one Table 2 row.
type RowSpec struct {
	Label     string
	Permanent string // the "Data Permanent" column
	Policy    fs.Policy
}

// Rows lists the eight configurations in the paper's order.
func Rows() []RowSpec {
	mk := func(kind fs.PolicyKind) fs.Policy { return fs.DefaultPolicy(kind) }
	rioNoProt := mk(fs.PolicyRio)
	rioNoProt.Protect = false
	rioProt := mk(fs.PolicyRio)
	rioProt.Protect = true
	return []RowSpec{
		{"Memory File System", "never", mk(fs.PolicyMFS)},
		{"UFS, delayed data+metadata", "0-30s, async", mk(fs.PolicyUFSDelayed)},
		{"AdvFS (log metadata)", "0-30s, async", mk(fs.PolicyAdvFS)},
		{"UFS", "data 64KB async, meta sync", mk(fs.PolicyUFS)},
		{"UFS write-through on close", "after close", mk(fs.PolicyUFSWTClose)},
		{"UFS write-through on write", "after write", mk(fs.PolicyUFSWTWrite)},
		{"Rio without protection", "after write", rioNoProt},
		{"Rio with protection", "after write", rioProt},
	}
}

// Row is one measured Table 2 row.
type Row struct {
	Spec   RowSpec
	CpRmCp sim.Duration
	CpRmRm sim.Duration
	Sdet   sim.Duration
	Andrew sim.Duration
}

// CpRm is the workload total (copy + remove).
func (r Row) CpRm() sim.Duration { return r.CpRmCp + r.CpRmRm }

// newMachine builds a perf machine for a policy: fast-path kernel, no
// checksum maintenance, caches large enough that reliability policy — not
// capacity — decides all disk traffic, as in the paper (80 MB UBC vs
// smaller working sets).
func (c Config) newMachine(pol fs.Policy) (*machine.Machine, error) {
	opt := machine.DefaultOptions(pol)
	opt.FastPath = true
	opt.Checksums = false
	opt.Seed = c.Seed
	opt.MemPages = 3072 // 24 MB
	opt.DataCap = 2048  // 16 MB UBC
	opt.MetaCap = 512
	opt.RegistryFrames = 24 // 3072 entries >= MetaCap+DataCap
	opt.DiskBlocks = 8192   // 64 MB disk
	opt.NInodes = 4096
	opt.Costs = c.Costs
	opt.DiskParams = c.DiskParams
	return machine.New(opt, nil)
}

// RunRow measures all three workloads for one configuration, each on a
// fresh machine.
func (c Config) RunRow(spec RowSpec) (Row, error) {
	row := Row{Spec: spec}

	m, err := c.newMachine(spec.Policy)
	if err != nil {
		return row, err
	}
	cp, rm, err := c.CpRm.Run(m)
	if err != nil {
		return row, fmt.Errorf("%s/cp+rm: %w", spec.Label, err)
	}
	row.CpRmCp, row.CpRmRm = cp, rm

	m, err = c.newMachine(spec.Policy)
	if err != nil {
		return row, err
	}
	row.Sdet, err = c.Sdet.Run(m)
	if err != nil {
		return row, fmt.Errorf("%s/sdet: %w", spec.Label, err)
	}

	m, err = c.newMachine(spec.Policy)
	if err != nil {
		return row, err
	}
	row.Andrew, err = c.Andrew.Run(m)
	if err != nil {
		return row, fmt.Errorf("%s/andrew: %w", spec.Label, err)
	}
	if c.Progress != nil {
		c.Progress(fmt.Sprintf("%-30s cp+rm=%v (%v+%v) sdet=%v andrew=%v",
			spec.Label, row.CpRm(), row.CpRmCp, row.CpRmRm, row.Sdet, row.Andrew))
	}
	return row, nil
}

// RunTable2 measures every configuration.
func (c Config) RunTable2() ([]Row, error) {
	var rows []Row
	for _, spec := range Rows() {
		row, err := c.RunRow(spec)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Format renders rows in the layout of the paper's Table 2.
func Format(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %-28s %18s %12s %12s\n",
		"Configuration", "Data Permanent", "cp+rm (cp+rm)", "Sdet", "Andrew")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %-28s %7.1fs (%0.1f+%0.1f) %11.1fs %11.1fs\n",
			r.Spec.Label, r.Spec.Permanent,
			r.CpRm().Seconds(), r.CpRmCp.Seconds(), r.CpRmRm.Seconds(),
			r.Sdet.Seconds(), r.Andrew.Seconds())
	}
	return b.String()
}

// Ratios summarises the headline comparisons of the paper's abstract for a
// measured table: Rio (with protection) versus the write-through, default
// UFS, and delayed configurations.
type Ratios struct {
	VsWriteThroughWrite [3]float64 // per workload: cp+rm, sdet, andrew
	VsWriteThroughClose [3]float64
	VsUFS               [3]float64
	VsDelayed           [3]float64
	VsMFS               [3]float64
}

// ComputeRatios derives the headline speedups from a full table.
func ComputeRatios(rows []Row) Ratios {
	byLabel := map[string]Row{}
	for _, r := range rows {
		byLabel[r.Spec.Label] = r
	}
	rio := byLabel["Rio with protection"]
	div := func(a, b Row) [3]float64 {
		return [3]float64{
			float64(a.CpRm()) / float64(b.CpRm()),
			float64(a.Sdet) / float64(b.Sdet),
			float64(a.Andrew) / float64(b.Andrew),
		}
	}
	return Ratios{
		VsWriteThroughWrite: div(byLabel["UFS write-through on write"], rio),
		VsWriteThroughClose: div(byLabel["UFS write-through on close"], rio),
		VsUFS:               div(byLabel["UFS"], rio),
		VsDelayed:           div(byLabel["UFS, delayed data+metadata"], rio),
		VsMFS:               div(byLabel["Memory File System"], rio),
	}
}

// ProtectionOverhead measures the paper's claim that Rio's protection adds
// essentially no overhead: it returns cp+rm time without and with
// protection. (§4: 24s vs 25s.)
func (c Config) ProtectionOverhead() (without, with sim.Duration, err error) {
	noProt := fs.DefaultPolicy(fs.PolicyRio)
	noProt.Protect = false
	prot := fs.DefaultPolicy(fs.PolicyRio)
	prot.Protect = true

	m, err := c.newMachine(noProt)
	if err != nil {
		return 0, 0, err
	}
	cp, rm, err := c.CpRm.Run(m)
	if err != nil {
		return 0, 0, err
	}
	without = cp + rm

	m, err = c.newMachine(prot)
	if err != nil {
		return 0, 0, err
	}
	cp, rm, err = c.CpRm.Run(m)
	if err != nil {
		return 0, 0, err
	}
	with = cp + rm
	return without, with, nil
}

// CodePatchingOverhead measures the §2.1 ablation: protecting via software
// checks on every kernel store instead of forcing KSEG through the TLB
// (20-50% slower in the paper's experiments). The paper measured this on
// kernel-copy-intensive operation, so the probe here is a dd-style stream:
// write a large file in 8 KB chunks, overwrite it, read it back — entirely
// in the Rio file cache, no disk time to mask the per-store checks.
func (c Config) CodePatchingOverhead() (tlb, patched sim.Duration, err error) {
	prot := fs.DefaultPolicy(fs.PolicyRio)
	prot.Protect = true

	run := func(codePatching bool) (sim.Duration, error) {
		opt := machine.DefaultOptions(prot)
		opt.FastPath = true
		opt.Checksums = false
		opt.Seed = c.Seed
		opt.MemPages = 3072
		opt.DataCap = 2048
		opt.MetaCap = 512
		opt.RegistryFrames = 24
		opt.DiskBlocks = 8192
		opt.NInodes = 4096
		opt.Costs = c.Costs
		opt.DiskParams = c.DiskParams
		opt.CodePatching = codePatching
		m, err := machine.New(opt, nil)
		if err != nil {
			return 0, err
		}
		const totalBytes = 12 << 20
		chunk := make([]byte, fs.BlockSize)
		t0 := m.Engine.Clock.Now()
		f, err := m.FS.Create("/stream")
		if err != nil {
			return 0, err
		}
		for pass := 0; pass < 2; pass++ {
			for off := int64(0); off < totalBytes; off += fs.BlockSize {
				if _, err := f.WriteAt(chunk, off); err != nil {
					return 0, err
				}
			}
		}
		for off := int64(0); off < totalBytes; off += fs.BlockSize {
			if _, err := f.ReadAt(chunk, off); err != nil {
				return 0, err
			}
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		return m.Engine.Clock.Now().Sub(t0), nil
	}

	if tlb, err = run(false); err != nil {
		return 0, 0, err
	}
	if patched, err = run(true); err != nil {
		return 0, 0, err
	}
	return tlb, patched, nil
}
