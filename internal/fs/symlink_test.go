package fs_test

import (
	"bytes"
	"strings"
	"testing"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/warmreboot"
)

func TestSymlinkBasics(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	writeFile(t, m, "/target", []byte("pointed at"))
	if err := m.FS.Symlink("/target", "/link"); err != nil {
		t.Fatal(err)
	}
	// Readlink returns the target verbatim.
	got, err := m.FS.Readlink("/link")
	if err != nil || got != "/target" {
		t.Fatalf("readlink = %q, %v", got, err)
	}
	// Opening through the link reads the target's data.
	if data := readFile(t, m, "/link"); string(data) != "pointed at" {
		t.Fatalf("through link: %q", data)
	}
	// Stat follows; Lstat does not.
	st, err := m.FS.Stat("/link")
	if err != nil || st.IsSymlink || st.Size != 10 {
		t.Fatalf("stat through link: %+v %v", st, err)
	}
	lst, err := m.FS.Lstat("/link")
	if err != nil || !lst.IsSymlink {
		t.Fatalf("lstat: %+v %v", lst, err)
	}
}

func TestSymlinkToDirectory(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	m.FS.Mkdir("/real")
	writeFile(t, m, "/real/f", []byte("deep"))
	if err := m.FS.Symlink("/real", "/alias"); err != nil {
		t.Fatal(err)
	}
	// Path components through the link resolve.
	if data := readFile(t, m, "/alias/f"); string(data) != "deep" {
		t.Fatalf("got %q", data)
	}
	ents, err := m.FS.ReadDir("/alias")
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir through link: %v %v", ents, err)
	}
}

func TestRelativeSymlink(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	m.FS.Mkdir("/d")
	writeFile(t, m, "/d/file", []byte("rel"))
	if err := m.FS.Symlink("file", "/d/rellink"); err != nil {
		t.Fatal(err)
	}
	if data := readFile(t, m, "/d/rellink"); string(data) != "rel" {
		t.Fatalf("got %q", data)
	}
}

func TestSymlinkLoopDetected(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	m.FS.Symlink("/b", "/a")
	m.FS.Symlink("/a", "/b")
	_, err := m.FS.Open("/a")
	if err != fs.ErrSymlinkLoop {
		t.Fatalf("err = %v", err)
	}
}

func TestDanglingSymlink(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	m.FS.Symlink("/nowhere", "/dangle")
	if _, err := m.FS.Open("/dangle"); err != fs.ErrNotFound {
		t.Fatalf("err = %v", err)
	}
	// Lstat and Readlink still work on the dangling link.
	if _, err := m.FS.Lstat("/dangle"); err != nil {
		t.Fatal(err)
	}
	if tgt, err := m.FS.Readlink("/dangle"); err != nil || tgt != "/nowhere" {
		t.Fatal(tgt, err)
	}
}

func TestSymlinkUnlink(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	writeFile(t, m, "/t", []byte("stays"))
	m.FS.Symlink("/t", "/l")
	if err := m.FS.Unlink("/l"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Lstat("/l"); err != fs.ErrNotFound {
		t.Fatalf("link survived: %v", err)
	}
	// Target untouched.
	if string(readFile(t, m, "/t")) != "stays" {
		t.Fatal("target destroyed by unlinking the link")
	}
}

func TestSymlinkErrors(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	writeFile(t, m, "/f", []byte("x"))
	if err := m.FS.Symlink("/f", "/f"); err != fs.ErrExists {
		t.Fatalf("exists: %v", err)
	}
	if err := m.FS.Symlink(strings.Repeat("x", fs.MaxTargetLen+1), "/l"); err != fs.ErrNameTooLong {
		t.Fatalf("long target: %v", err)
	}
	if _, err := m.FS.Readlink("/f"); err != fs.ErrNotSymlink {
		t.Fatalf("readlink on file: %v", err)
	}
}

func TestSymlinkTargetRoundTripsAllLengths(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	for _, n := range []int{1, 7, 20, fs.MaxTargetLen} {
		target := "/" + strings.Repeat("t", n-1)
		link := "/l" + itoa(n)
		if err := m.FS.Symlink(target, link); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := m.FS.Readlink(link)
		if err != nil || got != target {
			t.Fatalf("n=%d: %q %v", n, got, err)
		}
	}
}

func TestSymlinkSurvivesWarmReboot(t *testing.T) {
	pol := fs.DefaultPolicy(fs.PolicyRio)
	opt := machine.DefaultOptions(pol)
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := kernel.FillBytes(fs.BlockSize, 3)
	writeFile(t, m, "/target", data)
	if err := m.FS.Symlink("/target", "/link"); err != nil {
		t.Fatal(err)
	}
	m.Kernel.Panic("crash with symlink in buffer cache")
	m.CrashFinish()
	if _, err := warmreboot.Warm(m); err != nil {
		t.Fatal(err)
	}
	tgt, err := m.FS.Readlink("/link")
	if err != nil || tgt != "/target" {
		t.Fatalf("symlink lost in warm reboot: %q %v", tgt, err)
	}
	if !bytes.Equal(readFile(t, m, "/link"), data) {
		t.Fatal("data through link wrong after reboot")
	}
}

func TestSymlinkSurvivesFsck(t *testing.T) {
	m := boot(t, fs.PolicyUFS)
	writeFile(t, m, "/t", []byte("y"))
	m.FS.Symlink("/t", "/l")
	m.FS.Unmount()
	rep, err := fs.Fsck(m.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck flagged symlink volume: %v", rep)
	}
	m.Mem.Scramble(1)
	if err := m.Boot(nil); err != nil {
		t.Fatal(err)
	}
	if tgt, err := m.FS.Readlink("/l"); err != nil || tgt != "/t" {
		t.Fatalf("%q %v", tgt, err)
	}
}

func TestReadDirMarksSymlinks(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	writeFile(t, m, "/f", []byte("x"))
	m.FS.Symlink("/f", "/l")
	ents, err := m.FS.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ents {
		if e.Name == "l" {
			found = true
			if !e.IsSymlink {
				t.Fatal("link not marked")
			}
		}
		if e.Name == "f" && e.IsSymlink {
			t.Fatal("file marked as link")
		}
	}
	if !found {
		t.Fatal("link missing from readdir")
	}
}
