package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(5 * Second)
	if c.Now() != Time(5*Second) {
		t.Fatalf("clock at %d, want 5s", c.Now())
	}
	c.AdvanceTo(Time(3 * Second)) // in the past: no-op
	if c.Now() != Time(5*Second) {
		t.Fatalf("AdvanceTo moved clock backwards to %d", c.Now())
	}
	c.AdvanceTo(Time(9 * Second))
	if c.Now() != Time(9*Second) {
		t.Fatalf("clock at %d, want 9s", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("reset clock at %d, want 0", c.Now())
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{Microsecond, "1us"},
		{250 * Millisecond, "250ms"},
		{2 * Second, "2s"},
		{-Second, "-1s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(10 * Second)
	t1 := t0.Add(5 * Second)
	if t1.Sub(t0) != 5*Second {
		t.Fatalf("Sub = %v, want 5s", t1.Sub(t0))
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRandRangeInclusive(t *testing.T) {
	r := NewRand(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range(3,5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Range(3,5) never produced all values: %v", seen)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestRandPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRand(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandBytesDeterministic(t *testing.T) {
	a := make([]byte, 100)
	b := make([]byte, 100)
	NewRand(5).Bytes(a)
	NewRand(5).Bytes(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Bytes not deterministic at %d", i)
		}
	}
}

func TestRandFork(t *testing.T) {
	parent := NewRand(100)
	child := parent.Fork()
	// Child must not replay the parent's stream.
	p := NewRand(100)
	p.Uint64() // consume the fork draw
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() && i > 10 {
			// occasional coincidence fine; consistent equality is not —
			// checked by counting below instead.
			break
		}
	}
	// Determinism of forking itself:
	c2 := NewRand(100).Fork()
	c3 := NewRand(100).Fork()
	for i := 0; i < 100; i++ {
		if c2.Uint64() != c3.Uint64() {
			t.Fatal("Fork is not deterministic")
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(nil)
	var order []string
	e.Schedule(Time(30), "c", func() { order = append(order, "c") })
	e.Schedule(Time(10), "a", func() { order = append(order, "a") })
	e.Schedule(Time(20), "b", func() { order = append(order, "b") })
	e.Drain()
	if got := len(order); got != 3 {
		t.Fatalf("fired %d events, want 3", got)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if e.Clock.Now() != Time(30) {
		t.Fatalf("clock at %d after drain, want 30", e.Clock.Now())
	}
}

func TestEngineEqualTimeFIFO(t *testing.T) {
	e := NewEngine(nil)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Time(5), "tie", func() { order = append(order, i) })
	}
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(nil)
	fired := false
	ev := e.Schedule(Time(10), "x", func() { fired = true })
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	e.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(nil)
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.Schedule(at, "t", func() { fired = append(fired, at) })
	}
	e.RunUntil(Time(20))
	if len(fired) != 2 {
		t.Fatalf("fired %d events before deadline, want 2", len(fired))
	}
	if e.Clock.Now() != Time(20) {
		t.Fatalf("clock at %d, want 20", e.Clock.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(nil)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, "tick", tick)
		}
	}
	e.After(10, "tick", tick)
	e.Drain()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Clock.Now() != Time(50) {
		t.Fatalf("clock at %d, want 50", e.Clock.Now())
	}
}

func TestEnginePastSchedulePanics(t *testing.T) {
	e := NewEngine(nil)
	e.Clock.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(Time(50), "past", func() {})
}

func TestEngineReset(t *testing.T) {
	e := NewEngine(nil)
	e.Schedule(Time(10), "x", func() {})
	e.Clock.Advance(5)
	e.Reset()
	if e.Pending() != 0 || e.Clock.Now() != 0 {
		t.Fatalf("reset left pending=%d now=%d", e.Pending(), e.Clock.Now())
	}
}
