// Package commitclean holds commit-protocol shapes the commitorder
// analyzer must accept: the canonical ordering, functions that touch
// only one verb, an unrelated type that happens to share method names,
// and a reasoned suppression.
package commitclean

type Record struct{ ID uint64 }

type Log struct{}

func (l *Log) Publish(recs []Record) error { return nil }
func (l *Log) Apply(rec *Record) error     { return nil }
func (l *Log) Erase() error                { return nil }

type task struct{}
type response struct{}

type shard struct{ log Log }

func (sh *shard) ackCommit(t task, r *response) {}

// serve is the canonical group-commit shape: publish the batch, apply
// every record, erase, and only then ack.
func (sh *shard) serve(t task, recs []Record) {
	sh.log.Publish(recs)
	for i := range recs {
		sh.log.Apply(&recs[i])
	}
	sh.log.Erase()
	sh.ackCommit(t, &response{})
}

// applyOnly touches a single verb; there is no ordering to violate.
func (sh *shard) applyOnly(rec *Record) {
	sh.log.Apply(rec)
}

// ackOnly is the delivery seam itself: no record handling in sight.
func (sh *shard) ackOnly(t task) {
	sh.ackCommit(t, &response{})
}

// journal is not the commit log; its same-named methods are free to
// run in any order.
type journal struct{}

func (j *journal) Publish(recs []Record) error { return nil }
func (j *journal) Erase() error                { return nil }

func rotate(j *journal, recs []Record) {
	j.Erase()
	j.Publish(recs)
}

// resetForTest wipes a scratch log before seeding it; the reversed
// order is deliberate and carries a reason.
func resetForTest(l *Log, recs []Record) {
	//riolint:commitorder test scaffolding wipes a scratch log nothing committed to
	l.Erase()
	l.Publish(recs)
	for i := range recs {
		l.Apply(&recs[i])
	}
}
