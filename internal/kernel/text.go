package kernel

import "rio/internal/kvm"

// Intrinsic numbers (OpIntr imm values).
const (
	IntrMalloc = 1 // r1=size          -> r0=vaddr (0 if full)
	IntrFree   = 2 // r1=vaddr
	IntrLock   = 3 // r1=lock id
	IntrUnlock = 4 // r1=lock id
)

// BufHdr is the layout of a buffer header in the kernel heap, as seen by
// the write_block kasm procedure. Offsets are part of the kernel ABI.
const (
	BufHdrMagic   = 0xB0FF // magic value (fits MovI's 32-bit immediate)
	bufHdrOffMag  = 0
	bufHdrOffData = 8  // address of buffer data (KSEG for UBC, virt for meta)
	bufHdrOffSize = 16 // bytes to copy
	bufHdrOffSrc  = 24 // staging source address
	bufHdrOffDst  = 32 // byte offset within the buffer
	bufHdrOffLock = 40 // per-buffer lock id
	BufHdrSize    = 48
)

// BuildText assembles the kernel's standard procedures. The returned Text
// is the pristine kernel image; crash tests clone it before injecting
// faults.
//
// Register conventions: r1-r4 arguments, r0 result, r5-r9 temporaries,
// r15 stack pointer. Procedures preserve no registers except through the
// explicit push/pop pairs they contain — stale register contents between
// calls are deliberate (see kvm.VM.Exec).
func BuildText() *kvm.Text {
	a := kvm.NewAsm()

	// bcopy(dst=r1, src=r2, len=r3): forward byte/word copy.
	// The inner loops are where copy-overrun and register-corruption
	// faults do their damage.
	a.Proc("bcopy")
	a.MovI(4, 0) // i = 0
	a.MovI(5, 0) // zero
	a.EndProlog()
	// If (dst|src) is 8-aligned, use the word loop.
	a.Or(6, 1, 2)
	a.MovI(7, 7)
	a.And(6, 6, 7)
	a.BneL(6, 5, "bcopy_tail")
	a.MovI(6, 8)
	a.Label("bcopy_loop8")
	a.Sub(7, 3, 4) // remaining
	a.BltL(7, 6, "bcopy_tail")
	a.Add(8, 2, 4)
	a.Ld(9, 8, 0)
	a.Add(8, 1, 4)
	a.St(8, 0, 9)
	a.AddI(4, 4, 8)
	a.JmpL("bcopy_loop8")
	a.Label("bcopy_tail")
	a.Sub(7, 3, 4)
	a.BleL(7, 5, "bcopy_done")
	a.Add(8, 2, 4)
	a.LdB(9, 8, 0)
	a.Add(8, 1, 4)
	a.StB(8, 0, 9)
	a.AddI(4, 4, 1)
	a.JmpL("bcopy_tail")
	a.Label("bcopy_done")
	a.Ret()

	// bzero(dst=r1, len=r2).
	a.Proc("bzero")
	a.MovI(3, 0) // i
	a.MovI(4, 0) // zero
	a.EndProlog()
	a.Label("bzero_loop")
	a.Sub(5, 2, 3)
	a.BleL(5, 4, "bzero_done")
	a.Add(6, 1, 3)
	a.StB(6, 0, 4)
	a.AddI(3, 3, 1)
	a.JmpL("bzero_loop")
	a.Label("bzero_done")
	a.Ret()

	// cksum(addr=r1, len=r2) -> r0: rolling h = h*31 + b checksum.
	a.Proc("cksum")
	a.MovI(0, 0)
	a.MovI(3, 0) // i
	a.MovI(4, 0) // zero
	a.EndProlog()
	a.Label("cksum_loop")
	a.Sub(5, 2, 3)
	a.BleL(5, 4, "cksum_done")
	a.Add(6, 1, 3)
	a.LdB(7, 6, 0)
	a.ShlI(8, 0, 5)
	a.Sub(8, 8, 0) // h*31
	a.Add(0, 8, 7)
	a.AddI(3, 3, 1)
	a.JmpL("cksum_loop")
	a.Label("cksum_done")
	a.Ret()

	// fill(dst=r1, len=r2, seed=r3): xorshift pattern fill; used by the
	// workload generator to produce file contents inside the kernel.
	a.Proc("fill")
	a.MovI(4, 0) // i
	a.MovI(5, 0) // zero
	a.EndProlog()
	a.Label("fill_loop")
	a.Sub(6, 2, 4)
	a.BleL(6, 5, "fill_done")
	a.Add(7, 1, 4)
	a.StB(7, 0, 3)
	// seed: x ^= x<<13; x ^= x>>7; x ^= x<<17
	a.ShlI(8, 3, 13)
	a.Xor(3, 3, 8)
	a.ShrI(8, 3, 7)
	a.Xor(3, 3, 8)
	a.ShlI(8, 3, 17)
	a.Xor(3, 3, 8)
	a.AddI(4, 4, 1)
	a.JmpL("fill_loop")
	a.Label("fill_done")
	a.Ret()

	// memcmp(a=r1, b=r2, len=r3) -> r0: 0 if equal, 1 otherwise.
	a.Proc("memcmp")
	a.MovI(0, 0)
	a.MovI(4, 0) // i
	a.MovI(5, 0) // zero
	a.EndProlog()
	a.Label("memcmp_loop")
	a.Sub(6, 3, 4)
	a.BleL(6, 5, "memcmp_done")
	a.Add(7, 1, 4)
	a.LdB(8, 7, 0)
	a.Add(7, 2, 4)
	a.LdB(9, 7, 0)
	a.BneL(8, 9, "memcmp_diff")
	a.AddI(4, 4, 1)
	a.JmpL("memcmp_loop")
	a.Label("memcmp_diff")
	a.MovI(0, 1)
	a.Label("memcmp_done")
	a.Ret()

	// write_block(hdr=r1): the file cache's sanctioned block-write path.
	// Validates the buffer header magic (consistency check), takes the
	// buffer lock, copies staged data into the buffer, releases the lock.
	a.Proc("write_block")
	a.Ld(4, 1, bufHdrOffMag)
	a.MovI(5, BufHdrMagic)
	a.EndProlog()
	a.Assert(4, 5) // corrupted header -> kernel consistency panic
	a.Ld(6, 1, bufHdrOffLock)
	a.Push(1)
	a.Mov(1, 6)
	a.Intr(IntrLock)
	a.Pop(1)
	a.Ld(6, 1, bufHdrOffData)
	a.Ld(7, 1, bufHdrOffDst)
	a.Add(6, 6, 7) // dst = data + offset
	a.Ld(2, 1, bufHdrOffSrc)
	a.Ld(3, 1, bufHdrOffSize)
	a.Push(1)
	a.Mov(1, 6)
	a.Call("bcopy")
	a.Pop(1)
	a.Ld(6, 1, bufHdrOffLock)
	a.Push(1)
	a.Mov(1, 6)
	a.Intr(IntrUnlock)
	a.Pop(1)
	a.Ret()

	// read_block(hdr=r1): the mirror path — copies buffer data out to the
	// staging area (copyout). Same header checks and locking.
	a.Proc("read_block")
	a.Ld(4, 1, bufHdrOffMag)
	a.MovI(5, BufHdrMagic)
	a.EndProlog()
	a.Assert(4, 5)
	a.Ld(6, 1, bufHdrOffLock)
	a.Push(1)
	a.Mov(1, 6)
	a.Intr(IntrLock)
	a.Pop(1)
	a.Ld(2, 1, bufHdrOffData)
	a.Ld(7, 1, bufHdrOffDst)
	a.Add(2, 2, 7) // src = data + offset
	a.Ld(3, 1, bufHdrOffSize)
	a.Ld(6, 1, bufHdrOffSrc) // staging destination
	a.Push(1)
	a.Mov(1, 6)
	a.Call("bcopy")
	a.Pop(1)
	a.Ld(6, 1, bufHdrOffLock)
	a.Push(1)
	a.Mov(1, 6)
	a.Intr(IntrUnlock)
	a.Pop(1)
	a.Ret()

	appendBallast(a)

	return a.MustAssemble()
}
