// Package mem implements the simulated physical memory of the Rio machine.
//
// Physical memory is a flat byte array divided into 8 KB frames, matching
// the DEC Alpha page size used in the paper. Each frame carries the metadata
// Rio needs: whether it belongs to the file cache, whether it is currently
// write-protected, and whether a sanctioned write is in flight ("changing",
// used by the checksum machinery to skip buffers that were legitimately
// mid-update at crash time).
//
// This package is deliberately dumb storage: it performs no protection
// checks itself. Address translation and protection enforcement live in
// package mmu; trusted simulator paths (the warm-reboot memory dump, test
// oracles) access frames directly through this package, exactly as real
// hardware exposes raw DRAM to the boot firmware.
package mem

import "fmt"

// PageSize is the simulated page/frame size in bytes (8 KB, as on the
// DEC 3000/600 used in the paper).
const PageSize = 8192

// PageShift is log2(PageSize).
const PageShift = 13

// Frame holds per-frame metadata.
type Frame struct {
	// FileCache marks the frame as holding file-cache data (UBC or buffer
	// cache). Only file-cache frames are ever write-protected by Rio.
	FileCache bool
	// WriteProtected is Rio's protection bit. When protection is enforced
	// (see mmu), stores to a protected frame trap.
	WriteProtected bool
	// Changing marks a sanctioned write in progress: the buffer cannot be
	// classified by its checksum if the machine crashes now.
	Changing bool
	// Registry marks the frame as part of the Rio registry area, which is
	// protected like file-cache frames.
	Registry bool
}

// Memory is the simulated physical memory.
type Memory struct {
	data   []byte
	frames []Frame
}

// New returns a physical memory of size bytes. Size must be a positive
// multiple of PageSize.
func New(size int) *Memory {
	if size <= 0 || size%PageSize != 0 {
		panic(fmt.Sprintf("mem: size %d not a positive multiple of %d", size, PageSize))
	}
	return &Memory{
		data:   make([]byte, size),
		frames: make([]Frame, size/PageSize),
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// NumFrames returns the number of page frames.
func (m *Memory) NumFrames() int { return len(m.frames) }

// Frame returns a pointer to the metadata of frame n. It panics if n is out
// of range (a simulator bug, not a simulated fault).
func (m *Memory) Frame(n int) *Frame { return &m.frames[n] }

// FrameOf returns the frame number containing physical address addr.
func FrameOf(addr uint64) int { return int(addr >> PageShift) }

// FrameBase returns the physical base address of frame n.
func FrameBase(n int) uint64 { return uint64(n) << PageShift }

// Contains reports whether addr is a valid physical address.
func (m *Memory) Contains(addr uint64) bool { return addr < uint64(len(m.data)) }

// ContainsRange reports whether [addr, addr+n) lies entirely in memory.
func (m *Memory) ContainsRange(addr uint64, n int) bool {
	return n >= 0 && addr <= uint64(len(m.data)) && uint64(n) <= uint64(len(m.data))-addr
}

// ReadAt copies memory starting at physical address addr into buf. It
// panics on out-of-range access: raw access is for trusted simulator code
// only, which must stay in bounds.
func (m *Memory) ReadAt(addr uint64, buf []byte) {
	if !m.ContainsRange(addr, len(buf)) {
		panic(fmt.Sprintf("mem: raw read [%#x,+%d) out of range", addr, len(buf)))
	}
	copy(buf, m.data[addr:])
}

// WriteAt copies buf into memory at physical address addr. Raw, unchecked:
// trusted simulator paths only.
func (m *Memory) WriteAt(addr uint64, buf []byte) {
	if !m.ContainsRange(addr, len(buf)) {
		panic(fmt.Sprintf("mem: raw write [%#x,+%d) out of range", addr, len(buf)))
	}
	copy(m.data[addr:], buf)
}

// Byte returns the byte at physical address addr (raw access).
func (m *Memory) Byte(addr uint64) byte {
	if !m.Contains(addr) {
		panic(fmt.Sprintf("mem: raw byte read %#x out of range", addr))
	}
	return m.data[addr]
}

// SetByte stores a byte at physical address addr (raw access).
func (m *Memory) SetByte(addr uint64, b byte) {
	if !m.Contains(addr) {
		panic(fmt.Sprintf("mem: raw byte write %#x out of range", addr))
	}
	m.data[addr] = b
}

// Word64 reads a little-endian 64-bit word at addr (raw access).
func (m *Memory) Word64(addr uint64) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.Byte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// SetWord64 writes a little-endian 64-bit word at addr (raw access).
func (m *Memory) SetWord64(addr uint64, v uint64) {
	for i := 0; i < 8; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// FlipBit inverts a single bit of physical memory. Fault injection uses
// this for memory bit-flip fault models.
func (m *Memory) FlipBit(addr uint64, bit uint) {
	if bit > 7 {
		panic("mem: bit index out of range")
	}
	m.SetByte(addr, m.Byte(addr)^(1<<bit))
}

// Page returns the full contents of frame n as a fresh copy.
func (m *Memory) Page(n int) []byte {
	buf := make([]byte, PageSize)
	m.ReadAt(FrameBase(n), buf)
	return buf
}

// Slice returns a direct view of [addr, addr+n). Trusted simulator paths
// (bulk copies in the cache, warm-reboot dump) use this to avoid double
// copying; callers must not retain it across a Scramble.
func (m *Memory) Slice(addr uint64, n int) []byte {
	if !m.ContainsRange(addr, n) {
		panic(fmt.Sprintf("mem: slice [%#x,+%d) out of range", addr, n))
	}
	return m.data[addr : addr+uint64(n)]
}

// Dump returns a copy of all physical memory, as the warm-reboot step dumps
// RAM to the swap partition before the VM system initialises.
func (m *Memory) Dump() []byte {
	out := make([]byte, len(m.data))
	copy(out, m.data)
	return out
}

// Scramble overwrites all of memory with pseudo-random bytes derived from
// seed and clears all frame metadata. This simulates a cold boot (or the
// MicroVAX-style firmware that overwrites memory during reboot, which the
// Harp designers found made warm reboot impossible).
func (m *Memory) Scramble(seed uint64) {
	x := seed
	for i := range m.data {
		// splitmix64-ish scramble, cheap and deterministic.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		m.data[i] = byte(z ^ (z >> 31))
	}
	for i := range m.frames {
		m.frames[i] = Frame{}
	}
}

// ClearFlags resets all frame metadata but preserves contents. Used when a
// warm reboot re-initialises the kernel's view of memory while the data
// survives.
func (m *Memory) ClearFlags() {
	for i := range m.frames {
		m.frames[i] = Frame{}
	}
}
