package fs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"rio/internal/cache"
	"rio/internal/disk"
	"rio/internal/ioretry"
	"rio/internal/kernel"
	"rio/internal/sim"
)

// Stats counts file-system activity.
type Stats struct {
	Syscalls      uint64
	SyncReads     uint64
	SyncWrites    uint64
	AsyncWrites   uint64
	JournalWrites uint64
	MetaUpdates   uint64
	Fsyncs        uint64
	DaemonRuns    uint64
	ReadFailures  uint64 // block reads that failed after retries (served as zeroes)
	WriteFailures uint64 // block writes/commits lost after retries
	DcacheHits    uint64 // name lookups answered by the dcache
	DcacheMisses  uint64 // name lookups that scanned directory blocks
}

// asyncWrite is a queued disk write whose service time has been charged to
// the disk timeline; its content is applied (Commit) no later than the next
// synchronous disk operation, and is lost (or torn) if the system crashes
// first.
type asyncWrite struct {
	block    int64
	data     []byte
	done     sim.Time
	onCommit func() // runs when the content actually reaches the disk
}

// FS is a mounted file system.
type FS struct {
	K     *kernel.Kernel
	C     *cache.Cache
	D     *disk.Disk
	Clock *sim.Clock
	Eng   *sim.Engine
	Pol   Policy
	Costs Costs
	SB    Superblock

	Stats Stats

	// Retry wraps every disk operation in bounded retries and tracks the
	// mount's error budget; when it degrades, mutating syscalls return
	// ErrReadOnly (see writable).
	Retry *ioretry.Retrier

	diskFree    sim.Time
	lastIO      int64 // last block the head visited (sequentiality pricing)
	pending     []asyncWrite
	lastSteps   uint64
	lastToggles uint64
	lastChecks  uint64
	daemonEv    *sim.Event
	journalHead int64
	inoHint     uint32
	blkHint     int64
	mounted     bool

	// dc is the name-resolution cache (see dcache.go). It is rebuilt
	// empty on every Mount, so crash and warm reboot drop it wholesale.
	dc *dcache

	// bmFree caches, per bitmap block, how many in-range data blocks are
	// free, so balloc can skip exhausted bitmap blocks in O(1). Computed
	// lazily (-1 = unknown) from the block image on first use and kept
	// exact by balloc/bfree; like the dcache it is in-memory state that a
	// remount rebuilds, so crashes cannot stale it.
	bmFree []int

	// readBuf is readBlockSync's reusable transfer buffer: every caller
	// consumes the returned block (unmarshal or cache insert, both copy)
	// before issuing another read, so one buffer serves them all.
	readBuf []byte

	// blockPool recycles the full-block copies the asynchronous write
	// queue makes: drainPending returns committed buffers here instead of
	// dropping them for the collector.
	blockPool [][]byte
}

// blockPoolCap bounds blockPool; beyond this, drained buffers are
// simply dropped (a flushAllAsync burst should not pin the whole cache's
// worth of copies forever).
const blockPoolCap = 64

func (f *FS) getPooledBlock() []byte {
	if n := len(f.blockPool); n > 0 {
		b := f.blockPool[n-1]
		f.blockPool = f.blockPool[:n-1]
		return b
	}
	return make([]byte, BlockSize)
}

func (f *FS) putPooledBlock(b []byte) {
	if cap(b) >= BlockSize && len(f.blockPool) < blockPoolCap {
		f.blockPool = append(f.blockPool, b[:BlockSize])
	}
}

// Errors surfaced by the syscall layer.
var (
	ErrNotFound    = errors.New("fs: no such file or directory")
	ErrExists      = errors.New("fs: file exists")
	ErrNotDir      = errors.New("fs: not a directory")
	ErrIsDir       = errors.New("fs: is a directory")
	ErrNotEmpty    = errors.New("fs: directory not empty")
	ErrNameTooLong = errors.New("fs: name too long")
	ErrNoSpace     = errors.New("fs: no space left on device")
	ErrNoInodes    = errors.New("fs: out of inodes")
	ErrTooBig      = errors.New("fs: file too large")
	ErrClosed      = errors.New("fs: file already closed")
	ErrSymlinkLoop = errors.New("fs: too many levels of symbolic links")
	ErrNotSymlink  = errors.New("fs: not a symbolic link")
	ErrReadOnly    = errors.New("fs: read-only (I/O error budget exhausted)")
)

// writable gates mutating syscalls: once the retry layer's error budget
// is exhausted the mount degrades to read-only — refusing new writes to
// a disk that is eating them beats silently spreading damage.
func (f *FS) writable() error {
	if f.Retry != nil && f.Retry.Degraded() {
		return ErrReadOnly
	}
	return nil
}

// Degraded reports whether the mount has dropped to read-only mode.
func (f *FS) Degraded() bool { return f.Retry != nil && f.Retry.Degraded() }

// Mount attaches a formatted disk. The cache must be freshly constructed;
// Mount installs its write-back callback and schedules the update daemon
// according to the policy.
func Mount(k *kernel.Kernel, c *cache.Cache, d *disk.Disk, eng *sim.Engine, pol Policy, costs Costs) (*FS, error) {
	f := &FS{
		K: k, C: c, D: d, Eng: eng, Clock: eng.Clock,
		Pol: pol, Costs: costs,
	}
	f.Retry = ioretry.New(ioretry.DefaultPolicy(), eng.Clock)
	blk := f.readBlockSync(0)
	if err := f.SB.unmarshal(blk); err != nil {
		return nil, err
	}
	if f.SB.NBlocks != int64(d.NumSectors()/SectorsPerBlock) {
		return nil, fmt.Errorf("fs: superblock claims %d blocks, disk has %d",
			f.SB.NBlocks, d.NumSectors()/SectorsPerBlock)
	}
	f.journalHead = f.SB.JournalStart
	f.blkHint = f.SB.DataStart
	f.inoHint = 2 // root is 1
	f.dc = newDcache()
	// One summary slot per bitmap block that covers the data region.
	nbm := (f.SB.JournalStart-1)/int64(BlockSize*8) + 1
	f.bmFree = make([]int, int(nbm))
	for i := range f.bmFree {
		f.bmFree[i] = -1 // unknown until the bitmap block is first scanned
	}
	c.WriteBack = f.writeBackBuf
	if pol.UpdatePeriod > 0 {
		f.scheduleDaemon()
	}
	f.mounted = true
	// Baseline the CPU counters so mount-time work isn't charged twice.
	f.lastSteps = k.Steps()
	f.lastToggles = k.MMU.Stats.ProtToggle
	f.lastChecks = k.MMU.Stats.ProtChecks
	return f, nil
}

// --- time accounting ---

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// chargeCPU converts kernel work since the last charge into simulated time.
func (f *FS) chargeCPU() {
	steps := f.K.Steps()
	d := sim.Duration(int64(steps-f.lastSteps) * f.Costs.StepNs)
	f.lastSteps = steps
	tog := f.K.MMU.Stats.ProtToggle
	d += sim.Duration(tog-f.lastToggles) * f.Costs.ProtToggle
	f.lastToggles = tog
	chk := f.K.MMU.Stats.ProtChecks
	d += sim.Duration(chk-f.lastChecks) * f.Costs.PatchCheck
	f.lastChecks = chk
	f.Clock.Advance(d)
}

func (f *FS) beginOp() {
	f.Stats.Syscalls++
	f.Clock.Advance(f.Costs.Syscall)
	// Run a slice of the kernel's background machinery (scheduler,
	// accounting, polling) — see kernel.BackgroundTick. Errors here are
	// crashes; the syscall body will observe them.
	_ = f.K.BackgroundTick()
}

func (f *FS) endOp() {
	f.chargeCPU()
	if f.Eng != nil {
		f.Eng.RunUntil(f.Clock.Now())
	}
}

// --- block I/O ---

func blockSector(block int64) int { return int(block) * SectorsPerBlock }

// checkBlock validates a block number before any disk I/O. Metadata
// corrupted in memory (a fault-injection outcome) can surface as a garbage
// block pointer in an inode or directory; a real kernel's bread() bounds
// check catches it and panics — one more of the consistency checks §3.3
// credits with limiting damage.
func (f *FS) checkBlock(block int64) error {
	if block < 0 || block >= int64(f.D.NumSectors()/SectorsPerBlock) {
		return f.K.Panic(fmt.Sprintf("fs: block number %d out of range", block))
	}
	return nil
}

// retryDo routes a disk operation through the mount's retry layer (a
// direct call when none is attached, e.g. a hand-built test FS).
func (f *FS) retryDo(op func() error) error {
	if f.Retry == nil {
		return op()
	}
	return f.Retry.Do(op)
}

// drainPending applies every queued asynchronous write. By construction the
// disk timeline (diskFree) is at or beyond every queued write's completion,
// and synchronous operations begin at max(now, diskFree), so draining
// everything before a sync op preserves device order. A commit that still
// fails after retries is a lost write: the buffer stays dirty in the
// cache's view of the world but the disk never saw it — fsck or the
// checksum oracle will notice, which is the honest outcome.
func (f *FS) drainPending() {
	for _, w := range f.pending {
		w := w
		err := f.retryDo(func() error {
			return f.D.Commit(blockSector(w.block), w.data)
		})
		if err != nil {
			f.Stats.WriteFailures++
		} else if w.onCommit != nil {
			w.onCommit()
		}
		// Commit copied the bytes into the disk image (and a failed
		// commit abandoned them); either way the queue's copy can back a
		// future asynchronous write.
		if len(w.data) == BlockSize {
			f.putPooledBlock(w.data)
		}
	}
	f.pending = f.pending[:0]
}

// readBlockSync reads a block, blocking the caller until the disk is free
// and the transfer completes (including any retries of transient device
// errors, whose backoff runs on the simulated clock). The returned slice
// is the mount's reusable transfer buffer: it is valid only until the
// next readBlockSync call, which every caller satisfies by copying the
// block (cache insert, unmarshal) before reading again.
func (f *FS) readBlockSync(block int64) []byte {
	f.drainPending()
	if f.readBuf == nil {
		f.readBuf = make([]byte, BlockSize)
	}
	buf := f.readBuf
	clear(buf)
	if err := f.checkBlock(block); err != nil {
		// The kernel has panicked; return zeroes so the caller's error
		// path (which checks Crashed) unwinds without touching the disk.
		return buf
	}
	f.Clock.AdvanceTo(maxT(f.Clock.Now(), f.diskFree))
	err := f.retryDo(func() error {
		dur, err := f.D.Read(blockSector(block), buf)
		f.Clock.Advance(dur)
		return err
	})
	f.diskFree = f.Clock.Now()
	f.lastIO = block
	f.Stats.SyncReads++
	if err != nil {
		// Unreadable even after retries (latent sector, or budget-bounded
		// transients): serve zeroes, the same contract as the checkBlock
		// panic path. The loss is visible to checksums and the oracle.
		f.Stats.ReadFailures++
	}
	return buf
}

// writeBlockSync writes a block synchronously.
func (f *FS) writeBlockSync(block int64, data []byte) {
	f.drainPending()
	if err := f.checkBlock(block); err != nil {
		return
	}
	f.Clock.AdvanceTo(maxT(f.Clock.Now(), f.diskFree))
	err := f.retryDo(func() error {
		dur, err := f.D.Write(blockSector(block), data)
		f.Clock.Advance(dur)
		return err
	})
	f.diskFree = f.Clock.Now()
	f.lastIO = block
	f.Stats.SyncWrites++
	if err != nil {
		f.Stats.WriteFailures++
	}
}

// price computes the service time of one block transfer.
func (f *FS) price(seq bool) sim.Duration {
	p := f.D.Params()
	t := p.FixedOverhead
	if seq {
		t += p.TrackSwitch
	} else {
		t += p.Positioning
	}
	t += sim.Duration(int64(BlockSize) * int64(sim.Second) / p.BytesPerSecond)
	return t
}

// writeBlockAsync queues a block write: the caller does not wait, the disk
// timeline absorbs the service time, and the content lands at the next
// drain (or is lost in a crash). Runs of consecutive blocks get sequential
// pricing — the batching advantage that makes delayed writes and journal
// appends cheap.
func (f *FS) writeBlockAsync(block int64, data []byte) {
	f.writeBlockAsyncCB(block, data, nil)
}

// writeBlockAsyncCB queues an asynchronous write and runs onCommit when
// (and only if) the content reaches the disk — a crash drops uncommitted
// writes along with their callbacks.
func (f *FS) writeBlockAsyncCB(block int64, data []byte, onCommit func()) {
	if f.Pol.neverWrite() {
		return
	}
	if err := f.checkBlock(block); err != nil {
		return
	}
	seq := block == f.lastIO+1 || block == f.lastIO
	var cp []byte
	if len(data) == BlockSize {
		cp = f.getPooledBlock()
	} else {
		cp = make([]byte, len(data))
	}
	copy(cp, data)
	start := maxT(f.Clock.Now(), f.diskFree)
	f.diskFree = start.Add(f.price(seq))
	f.lastIO = block
	//riolint:bufalias sanctioned custody transfer: the pending queue owns this private copy until drainPending releases it back to the pool
	f.pending = append(f.pending, asyncWrite{block: block, data: cp, done: f.diskFree, onCommit: onCommit})
	f.Stats.AsyncWrites++
}

// CrashIO models the device's view of a crash: queued writes that had
// completed by now are on disk; the one in flight is torn; the rest are
// lost. Called by the crash-test harness.
func (f *FS) CrashIO(rng *sim.Rand) {
	now := f.Clock.Now()
	i := 0
	for ; i < len(f.pending) && f.pending[i].done <= now; i++ {
		// No retry loop at crash time: a write the dying device rejects
		// is simply lost, like the rest of the queue.
		if f.D.Commit(blockSector(f.pending[i].block), f.pending[i].data) != nil {
			continue
		}
		if cb := f.pending[i].onCommit; cb != nil {
			cb()
		}
	}
	if i < len(f.pending) {
		f.D.Tear(blockSector(f.pending[i].block), rng)
	}
	f.pending = nil
}

// OnPanic is the stock kernel's dying gasp: flush dirty buffers to disk.
// Rio's modified panic (and MFS) skips this; a hung kernel never gets here.
// Contents go out as they are in memory — if a wild store corrupted them,
// the corruption is now on disk, which is exactly how several of the
// paper's "disk corrupted" runs happened.
func (f *FS) OnPanic() {
	if !f.Pol.panicFlushes() {
		return
	}
	for _, kind := range []cache.Kind{cache.Meta, cache.Data} {
		for _, b := range f.C.DirtyBufs(kind) {
			if b.Block >= 0 {
				// Best effort from a dying kernel: a rejected write is lost.
				_ = f.D.Commit(blockSector(b.Block), f.C.Contents(b))
			}
		}
	}
}

// --- update daemon ---

func (f *FS) scheduleDaemon() {
	f.daemonEv = f.Eng.After(f.Pol.UpdatePeriod, "update-daemon", func() {
		f.runUpdateDaemon()
		if f.mounted {
			f.scheduleDaemon()
		}
	})
}

// runUpdateDaemon flushes all dirty buffers asynchronously, like update(8)
// calling sync every 30 seconds.
func (f *FS) runUpdateDaemon() {
	f.Stats.DaemonRuns++
	f.flushAllAsync()
	if f.Pol.metaJournal() {
		// Checkpoint: in-place metadata is now current; recycle the log.
		f.journalHead = f.SB.JournalStart
	}
}

func (f *FS) flushAllAsync() {
	for _, kind := range []cache.Kind{cache.Meta, cache.Data} {
		for _, b := range f.C.DirtyBufs(kind) {
			if b.Block < 0 {
				continue
			}
			// The buffer stays dirty until the write actually completes:
			// a crash that drops the queue must leave the buffer dirty so
			// warm reboot still restores it. The generation check skips
			// the clean-down if the buffer was rewritten meanwhile.
			b := b
			gen := b.Gen
			f.writeBlockAsyncCB(b.Block, f.C.Contents(b), func() {
				if b.Gen == gen {
					_ = f.C.MarkClean(b)
				}
			})
		}
	}
}

// writeBackBuf is the cache's eviction callback. Under Rio the write is
// synchronous: an evicted buffer's frame is reused immediately, so its
// content must be safe on disk before the memory copy disappears — this
// is the one disk write Rio ever does ("only when the cache overflows").
// Other policies evict through the asynchronous queue, accepting (as their
// real counterparts did) that a crash loses queued write-backs.
func (f *FS) writeBackBuf(b *cache.Buf) error {
	if f.Pol.neverWrite() {
		return fmt.Errorf("fs: memory file system out of cache space")
	}
	if b.Block < 0 {
		return fmt.Errorf("fs: dirty buffer with no disk address")
	}
	if f.Pol.syncIsNoop() {
		f.writeBlockSync(b.Block, f.C.Contents(b))
	} else {
		f.writeBlockAsync(b.Block, f.C.Contents(b))
	}
	return f.C.MarkClean(b)
}

// --- metadata buffers ---

// metaBuf returns the cached buffer for a metadata block, reading it from
// disk on a miss.
func (f *FS) metaBuf(block int64) (*cache.Buf, error) {
	if b := f.C.LookupMeta(block); b != nil {
		return b, nil
	}
	content := f.readBlockSync(block)
	if c := f.K.Crashed(); c != nil {
		return nil, c
	}
	return f.C.InsertMeta(block, content)
}

// metaUpdate installs a new full-block image for a metadata buffer and
// applies the policy's disk behaviour. Under Rio the in-memory update is
// made atomic with a shadow page, because the buffer cache is now the
// permanent copy (§2.3: "metadata updates in the buffer cache must be as
// carefully ordered as those to disk").
//
// ordered marks updates whose on-disk ordering UFS enforces with
// synchronous writes: namespace changes and inode initialisation/free
// [Ganger94]. Unordered metadata (allocation bitmaps, inode size growth,
// indirect blocks) is written back asynchronously even by default UFS —
// that distinction is much of why UFS beats the write-through mounts.
func (f *FS) metaUpdate(b *cache.Buf, img []byte, ordered bool) error {
	f.Stats.MetaUpdates++
	var err error
	if f.Pol.metaShadow() {
		err = f.C.WriteShadow(b, img)
	} else {
		err = f.C.Write(b, 0, img, BlockSize)
	}
	if err != nil {
		return err
	}
	switch {
	case f.Pol.neverWrite():
	case f.Pol.metaSync() && ordered:
		f.writeBlockSync(b.Block, f.C.Contents(b))
		return f.C.MarkClean(b)
	case f.Pol.metaJournal() && ordered:
		f.journalAppend(f.C.Contents(b))
	}
	return nil
}

// metaPatch applies a single-byte unordered metadata change. The caller
// has already stored the new byte into the cached image (img aliases
// f.C.Contents(b)); metaPatch pushes exactly that byte through the
// sanctioned protected-write path, so a one-bit bitmap flip stops
// paying metaUpdate's full-block copy (and, under Rio, its shadow-page
// protocol). No shadow is needed for atomicity: a one-byte copy cannot
// tear, and the registry's changing flag still brackets the window.
// Bitmap state is unordered metadata (see metaUpdate), so there is no
// synchronous write and no journal append.
func (f *FS) metaPatch(b *cache.Buf, img []byte, off int64) error {
	f.Stats.MetaUpdates++
	return f.C.Write(b, int(off), img[off:off+1], BlockSize)
}

// DropCaches flushes every dirty buffer synchronously and empties both
// caches — the benchmark cold-cache control (a freshly booted machine
// whose tree sits on disk). Memory-only policies keep their caches: for
// MFS the cache IS the storage, and Rio's file cache survives reboots by
// design, which is precisely why Rio reads stay warm in Table 2.
func (f *FS) DropCaches() error {
	if f.Pol.neverWrite() || f.Pol.Kind == PolicyRio {
		return nil
	}
	for _, kind := range []cache.Kind{cache.Meta, cache.Data} {
		for _, b := range f.C.DirtyBufs(kind) {
			if b.Block >= 0 {
				f.writeBlockSync(b.Block, f.C.Contents(b))
				if err := f.C.MarkClean(b); err != nil {
					return err
				}
			}
		}
		for _, b := range f.C.All(kind) {
			if err := f.C.Remove(b); err != nil {
				return err
			}
		}
	}
	f.drainPending()
	return nil
}

// journalAppend logs a metadata block image sequentially. Every fourth
// append is a group commit: the caller waits for the log to reach the
// platter, which is what bounds a journaling file system's metadata loss
// window and what keeps it measurably slower than pure delayed writes.
func (f *FS) journalAppend(img []byte) {
	if f.SB.JournalStart >= f.SB.NBlocks {
		return // no journal region; fall back to delayed behaviour
	}
	f.Stats.JournalWrites++
	if f.Stats.JournalWrites%4 == 0 {
		f.writeBlockSync(f.journalHead, img)
	} else {
		f.writeBlockAsync(f.journalHead, img)
	}
	f.journalHead++
	if f.journalHead >= f.SB.NBlocks {
		f.journalHead = f.SB.JournalStart // wrap
	}
}

// --- inodes ---

func (f *FS) inodeBlock(ino uint32) int64 {
	return f.SB.InodeStart + int64(ino)/InodesPerBlock
}

func (f *FS) getInode(ino uint32) (Inode, error) {
	if ino == 0 || int64(ino) >= f.SB.NInodes {
		return Inode{}, fmt.Errorf("fs: bad inode %d", ino)
	}
	b, err := f.metaBuf(f.inodeBlock(ino))
	if err != nil {
		return Inode{}, err
	}
	// Narrow read: one inode's bytes, not a copy of the whole block.
	var raw [InodeSize]byte
	f.C.ContentsAt(b, (int(ino)%InodesPerBlock)*InodeSize, raw[:])
	var n Inode
	n.unmarshal(raw[:])
	return n, nil
}

// putInode writes an inode back. ordered is true for inode
// initialisation/free (namespace-ordering metadata); size and pointer
// growth from writes is unordered.
func (f *FS) putInode(ino uint32, n *Inode, ordered bool) error {
	b, err := f.metaBuf(f.inodeBlock(ino))
	if err != nil {
		return err
	}
	img := f.C.Contents(b)
	off := (int(ino) % InodesPerBlock) * InodeSize
	n.marshal(img[off : off+InodeSize])
	return f.metaUpdate(b, img, ordered)
}

// ialloc finds a free inode and claims it with the given mode.
func (f *FS) ialloc(mode uint32) (uint32, error) {
	for probe := int64(0); probe < f.SB.NInodes; probe++ {
		ino := uint32((int64(f.inoHint) + probe) % f.SB.NInodes)
		if ino <= 1 { // 0 invalid, 1 root
			continue
		}
		n, err := f.getInode(ino)
		if err != nil {
			return 0, err
		}
		if n.Mode == ModeFree {
			f.inoHint = ino + 1
			n = Inode{Mode: mode, Nlink: 1}
			if err := f.putInode(ino, &n, true); err != nil {
				return 0, err
			}
			return ino, nil
		}
	}
	return 0, ErrNoInodes
}

// --- block allocator ---

const bitsPerBmBlock = int64(BlockSize * 8)

func (f *FS) bitmapBlockOf(block int64) (int64, int64) {
	return f.SB.BitmapStart + block/bitsPerBmBlock, block % bitsPerBmBlock
}

// firstZeroBit returns the index of the first clear bit in img within
// [from, to), or -1. Bit b of the image is img[b/8]&(1<<(b%8)), so a
// little-endian 64-bit load lines image bit (w*64+k) up with word bit k
// and a whole word of allocated blocks is rejected in one compare.
func firstZeroBit(img []byte, from, to int64) int64 {
	for from < to {
		w := from >> 6
		inv := ^binary.LittleEndian.Uint64(img[w*8:])
		inv &= ^uint64(0) << uint(from&63)
		if end := (w + 1) << 6; end > to {
			inv &= uint64(1)<<uint(to&63) - 1
		}
		if inv != 0 {
			return w<<6 + int64(bits.TrailingZeros64(inv))
		}
		from = (w + 1) << 6
	}
	return -1
}

// countBmFree counts the free data blocks covered by bitmap block index
// bi. Only bits inside [DataStart, JournalStart) are counted — bits
// outside never change on a mounted FS (bfree rejects non-data blocks),
// so the count stays exact under balloc's decrements and bfree's
// increments.
func (f *FS) countBmFree(bi int, img []byte) int {
	base := int64(bi) * bitsPerBmBlock
	lo, hi := base, base+bitsPerBmBlock
	if lo < f.SB.DataStart {
		lo = f.SB.DataStart
	}
	if hi > f.SB.JournalStart {
		hi = f.SB.JournalStart
	}
	free := 0
	for blk := lo; blk < hi; blk++ {
		bit := blk - base
		if img[bit/8]&(1<<(bit%8)) == 0 {
			free++
		}
	}
	return free
}

// balloc claims a free data block: cyclic first-fit from blkHint, the
// same order as the bit-at-a-time scan it replaces (an equivalence test
// pins the sequence), but exhausted bitmap blocks are skipped in O(1)
// via the bmFree summary and live candidates are scanned a word at a
// time.
func (f *FS) balloc() (int64, error) {
	start := f.blkHint
	if start < f.SB.DataStart || start >= f.SB.JournalStart {
		start = f.SB.DataStart
	}
	segs := [2][2]int64{{start, f.SB.JournalStart}, {f.SB.DataStart, start}}
	for _, seg := range segs {
		for blk := seg[0]; blk < seg[1]; {
			bb, _ := f.bitmapBlockOf(blk)
			bi := int(bb - f.SB.BitmapStart)
			base := int64(bi) * bitsPerBmBlock
			cover := base + bitsPerBmBlock // first block past this bitmap block
			end := seg[1]
			if cover < end {
				end = cover
			}
			if bi < len(f.bmFree) && f.bmFree[bi] == 0 {
				blk = cover
				continue
			}
			b, err := f.metaBuf(bb)
			if err != nil {
				return 0, err
			}
			img := f.C.Contents(b)
			if bi < len(f.bmFree) && f.bmFree[bi] < 0 {
				f.bmFree[bi] = f.countBmFree(bi, img)
				if f.bmFree[bi] == 0 {
					blk = cover
					continue
				}
			}
			if bit := firstZeroBit(img, blk-base, end-base); bit >= 0 {
				block := base + bit
				img[bit/8] |= 1 << (bit % 8)
				if err := f.metaPatch(b, img, bit/8); err != nil {
					return 0, err
				}
				if bi < len(f.bmFree) && f.bmFree[bi] > 0 {
					f.bmFree[bi]--
				}
				f.blkHint = block + 1
				return block, nil
			}
			blk = end
		}
	}
	return 0, ErrNoSpace
}

// bfree releases a data block.
func (f *FS) bfree(block int64) error {
	if block < f.SB.DataStart || block >= f.SB.JournalStart {
		return fmt.Errorf("fs: bfree of non-data block %d", block)
	}
	bb, bit := f.bitmapBlockOf(block)
	b, err := f.metaBuf(bb)
	if err != nil {
		return err
	}
	img := f.C.Contents(b)
	if img[bit/8]&(1<<(bit%8)) == 0 {
		return fmt.Errorf("fs: double free of block %d", block)
	}
	img[bit/8] &^= 1 << (bit % 8)
	if bi := int(bb - f.SB.BitmapStart); bi < len(f.bmFree) && f.bmFree[bi] >= 0 {
		f.bmFree[bi]++
	}
	return f.metaPatch(b, img, bit/8)
}

// --- file block mapping ---

// bmap resolves fileBlock to a disk block, allocating (and updating the
// inode in memory — caller must putInode) when alloc is set. Returns 0 for
// an unallocated hole when !alloc.
func (f *FS) bmap(n *Inode, fileBlock int64, alloc bool, inodeDirty *bool) (int64, error) {
	if fileBlock < 0 || fileBlock >= MaxFileBlocks {
		return 0, ErrTooBig
	}
	if fileBlock < NDirect {
		if n.Direct[fileBlock] == 0 {
			if !alloc {
				return 0, nil
			}
			blk, err := f.balloc()
			if err != nil {
				return 0, err
			}
			n.Direct[fileBlock] = int32(blk)
			*inodeDirty = true
		}
		return int64(n.Direct[fileBlock]), nil
	}
	// Indirect.
	if n.Indirect == 0 {
		if !alloc {
			return 0, nil
		}
		blk, err := f.balloc()
		if err != nil {
			return 0, err
		}
		n.Indirect = int32(blk)
		*inodeDirty = true
		// Fresh indirect block: all zero.
		if _, err := f.C.InsertMeta(blk, nil); err != nil {
			return 0, err
		}
	}
	ib, err := f.metaBuf(int64(n.Indirect))
	if err != nil {
		return 0, err
	}
	img := f.C.Contents(ib)
	idx := (fileBlock - NDirect) * 4
	var ptr uint32
	for i := 0; i < 4; i++ {
		ptr |= uint32(img[idx+int64(i)]) << (8 * i)
	}
	if ptr == 0 {
		if !alloc {
			return 0, nil
		}
		blk, err := f.balloc()
		if err != nil {
			return 0, err
		}
		for i := 0; i < 4; i++ {
			img[idx+int64(i)] = byte(uint64(blk) >> (8 * i))
		}
		if err := f.metaUpdate(ib, img, false); err != nil {
			return 0, err
		}
		return blk, nil
	}
	return int64(ptr), nil
}

// freeFileBlocks releases every block of an inode (unlink/truncate-to-0).
func (f *FS) freeFileBlocks(n *Inode) error {
	for i := range n.Direct {
		if n.Direct[i] != 0 {
			if err := f.bfree(int64(n.Direct[i])); err != nil {
				return err
			}
			n.Direct[i] = 0
		}
	}
	if n.Indirect != 0 {
		ib, err := f.metaBuf(int64(n.Indirect))
		if err != nil {
			return err
		}
		img := f.C.Contents(ib)
		for e := 0; e < PtrsPerBlock; e++ {
			var ptr uint32
			for i := 0; i < 4; i++ {
				ptr |= uint32(img[e*4+i]) << (8 * i)
			}
			if ptr != 0 {
				if err := f.bfree(int64(ptr)); err != nil {
					return err
				}
			}
		}
		// Drop the indirect block's cache entry and free it.
		if err := f.C.Remove(ib); err != nil {
			return err
		}
		if err := f.bfree(int64(n.Indirect)); err != nil {
			return err
		}
		n.Indirect = 0
	}
	return nil
}

// DiskFree exposes the disk timeline (perf harness reporting).
func (f *FS) DiskFree() sim.Time { return f.diskFree }

// PendingWrites returns the number of queued asynchronous writes.
func (f *FS) PendingWrites() int { return len(f.pending) }
