package workload

import (
	"fmt"
	"testing"

	"rio/internal/machine"
	"rio/internal/sim"
)

// Compile-time interface checks: every workload the scenario engine can
// name satisfies the contract.
var (
	_ Workload = (*MemTest)(nil)
	_ Workload = (*TxnTest)(nil)
	_ Workload = (*MetaCache)(nil)
	_ Workload = (*MailSpool)(nil)
	_ Workload = (*HotKey)(nil)
	_ Workload = (*Scan)(nil)
)

// --- keys.go ---

func TestKeyCDFShape(t *testing.T) {
	for _, skew := range []float64{0, 0.5, 1.0, 1.5} {
		cdf := NewKeyCDF(50, skew)
		if len(cdf) != 50 {
			t.Fatalf("skew %v: len %d", skew, len(cdf))
		}
		prev := 0.0
		for i, v := range cdf {
			if v < prev {
				t.Fatalf("skew %v: cdf not monotone at %d", skew, i)
			}
			prev = v
		}
		if cdf[49] < 0.999999 || cdf[49] > 1.000001 {
			t.Fatalf("skew %v: cdf does not end at 1: %v", skew, cdf[49])
		}
	}
}

func TestKeyCDFSkewConcentrates(t *testing.T) {
	uniform, zipf := NewKeyCDF(100, 0), NewKeyCDF(100, 1.2)
	r1, r2 := sim.NewRand(1), sim.NewRand(1)
	u0, z0 := 0, 0
	for i := 0; i < 5000; i++ {
		if uniform.Pick(r1) < 10 {
			u0++
		}
		if zipf.Pick(r2) < 10 {
			z0++
		}
	}
	if u0 < 300 || u0 > 700 {
		t.Fatalf("uniform top-10 share off: %d/5000", u0)
	}
	if z0 < 2*u0 {
		t.Fatalf("zipf does not concentrate: top-10 %d vs uniform %d", z0, u0)
	}
}

func TestKeyCDFDeterministic(t *testing.T) {
	cdf := NewKeyCDF(64, 0.99)
	r1 := sim.NewRand(sim.Mix(7, 9))
	r2 := sim.NewRand(sim.Mix(7, 9))
	for i := 0; i < 1000; i++ {
		if a, b := cdf.Pick(r1), cdf.Pick(r2); a != b {
			t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
		}
	}
}

func TestKeyCDFPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=0")
		}
	}()
	NewKeyCDF(0, 1)
}

// --- shared harness ---

// runClean drives w for n steps on a fresh rio machine and demands a
// clean verdict, returning the machine for follow-on damage injection.
func runClean(t *testing.T, w Workload, n int) *machine.Machine {
	t.Helper()
	m := newRio(t)
	if err := w.Setup(m.FS); err != nil {
		t.Fatalf("setup: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := w.Step(m.FS); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	v := w.Check(m.FS)
	if !v.Clean() {
		t.Fatalf("verdict on healthy system not clean: %+v", v)
	}
	if v.Checked == 0 {
		t.Fatal("verdict checked nothing")
	}
	return m
}

// flipByte XORs one byte of path at off behind the workload's back.
func flipByte(t *testing.T, m *machine.Machine, path string, off int64) {
	t.Helper()
	f, err := m.FS.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	b[0] ^= 0x5a
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	f.Close()
}

// --- metacache ---

func TestMetaCacheCleanAndDeterministic(t *testing.T) {
	verdicts := func() string {
		mc := NewMetaCache(21, 12, 0.9)
		m := runClean(t, mc, 400)
		_ = m
		return fmt.Sprintf("%v/%v", mc.srcVer, mc.cacheVer)
	}
	if a, b := verdicts(), verdicts(); a != b {
		t.Fatalf("metacache state diverged across identical runs:\n%s\n%s", a, b)
	}
}

func TestMetaCacheGoldenCorruption(t *testing.T) {
	mc := NewMetaCache(23, 8, 0.8)
	m := runClean(t, mc, 300)
	// Smash a source payload byte: the frame checksum must catch it.
	victim := -1
	for i, v := range mc.srcVer {
		if v > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no source files written")
	}
	flipByte(t, m, mc.srcPath(victim), int64(mcSrcHeader))
	v := mc.Check(m.FS)
	if len(v.Corruptions) == 0 {
		t.Fatal("smashed source payload not detected")
	}
}

func TestMetaCacheGoldenLyingHit(t *testing.T) {
	mc := NewMetaCache(25, 8, 0.8)
	m := runClean(t, mc, 300)
	// Find a file whose cache entry matches its source version, then
	// forge an internally-valid entry whose digest lies.
	victim := -1
	for i := range mc.srcVer {
		if mc.srcVer[i] > 0 && mc.cacheVer[i] == int64(mc.srcVer[i]) {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no cached files")
	}
	forged := mc.entryFrame(victim, mc.srcVer[victim])
	// Flip a digest bit, then re-seal the frame checksum so only the
	// lie remains detectable.
	forged[20] ^= 0x1
	seal := fnv64(forged[8 : mcEntryLen-8])
	for j := 0; j < 8; j++ {
		forged[mcEntryLen-8+j] = byte(seal >> (56 - 8*j))
	}
	f, err := m.FS.Open(mc.cachePath(victim))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(forged, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	v := mc.Check(m.FS)
	found := false
	for _, c := range v.Corruptions {
		if c.Path == mc.cachePath(victim) {
			found = true
		}
	}
	if !found {
		t.Fatalf("lying cache hit not convicted: %+v", v)
	}
}

func TestMetaCacheGoldenLostVersion(t *testing.T) {
	mc := NewMetaCache(27, 6, 0.7)
	m := runClean(t, mc, 500)
	// Roll a source back one acked version: Lost must trip.
	victim := -1
	for i, v := range mc.srcVer {
		if v >= 2 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no multi-version source")
	}
	f, err := m.FS.Open(mc.srcPath(victim))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(mc.srcFrame(victim, mc.srcVer[victim]-1), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	v := mc.Check(m.FS)
	if v.Lost == 0 {
		t.Fatalf("version rollback not counted as lost: %+v", v)
	}
}

func TestMetaCacheStaleEntryIsMiss(t *testing.T) {
	mc := NewMetaCache(29, 6, 0.7)
	m := runClean(t, mc, 500)
	// A cache entry one version behind its source is a miss, never a
	// conviction — the correct-or-miss contract.
	victim := -1
	for i := range mc.srcVer {
		if mc.srcVer[i] >= 2 && mc.cacheVer[i] == int64(mc.srcVer[i]) {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Skip("no suitable file this seed")
	}
	f, err := m.FS.Open(mc.cachePath(victim))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(mc.entryFrame(victim, mc.srcVer[victim]-1), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if v := mc.Check(m.FS); !v.Clean() {
		t.Fatalf("stale-but-valid entry convicted: %+v", v)
	}
}

// --- mailspool ---

func TestMailSpoolCleanRun(t *testing.T) {
	ms := NewMailSpool(31, 24)
	runClean(t, ms, 500)
	if ms.ReadMismatches != 0 {
		t.Fatalf("online mismatches on healthy system: %d", ms.ReadMismatches)
	}
	if ms.next < 2 {
		t.Fatal("no deliveries")
	}
}

func TestMailSpoolGoldenLostDelivery(t *testing.T) {
	ms := NewMailSpool(33, 24)
	m := runClean(t, ms, 400)
	if len(ms.live) == 0 {
		t.Fatal("no live messages")
	}
	if err := m.FS.Unlink(ms.newPath(ms.live[0])); err != nil {
		t.Fatal(err)
	}
	v := ms.Check(m.FS)
	if v.Lost == 0 {
		t.Fatalf("vanished acked delivery not counted lost: %+v", v)
	}
}

func TestMailSpoolGoldenTornRename(t *testing.T) {
	ms := NewMailSpool(35, 24)
	m := runClean(t, ms, 400)
	if len(ms.live) == 0 {
		t.Fatal("no live messages")
	}
	// Make a live message visible in tmp/ too: the rename shows on
	// both sides.
	id := ms.live[0]
	f, err := m.FS.Create(ms.tmpPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ms.frame(id)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	v := ms.Check(m.FS)
	if v.Torn == 0 {
		t.Fatalf("double-sided rename not counted torn: %+v", v)
	}
}

func TestMailSpoolGoldenResurrection(t *testing.T) {
	ms := NewMailSpool(37, 16)
	m := runClean(t, ms, 500)
	if len(ms.dead) == 0 {
		t.Fatal("no consumed messages")
	}
	id := ms.dead[len(ms.dead)-1]
	f, err := m.FS.Create(ms.newPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ms.frame(id)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	v := ms.Check(m.FS)
	if v.Lost == 0 {
		t.Fatalf("resurrected consumed message not counted lost: %+v", v)
	}
}

// --- hotkey ---

func TestHotKeyCleanRun(t *testing.T) {
	hk := NewHotKey(41, 48, 1.1, 100)
	runClean(t, hk, 600)
	if hk.ReadMismatches != 0 {
		t.Fatalf("online mismatches: %d", hk.ReadMismatches)
	}
}

func TestHotKeyFlashCrowdMovesHotSet(t *testing.T) {
	// The most-updated key must differ across epochs for at least one
	// epoch pair — otherwise the rotation is dead code.
	hk := NewHotKey(43, 32, 1.3, 50)
	m := newRio(t)
	if err := hk.Setup(m.FS); err != nil {
		t.Fatal(err)
	}
	tops := map[int]bool{}
	for e := 0; e < 4; e++ {
		counts := make([]int, hk.Keys)
		for i := 0; i < 50; i++ {
			before := append([]uint64{}, hk.ver...)
			if err := hk.Step(m.FS); err != nil {
				t.Fatal(err)
			}
			for k := range before {
				if hk.ver[k] != before[k] {
					counts[k]++
				}
			}
		}
		top, best := -1, -1
		for k, c := range counts {
			if c > best {
				top, best = k, c
			}
		}
		tops[top] = true
	}
	if len(tops) < 2 {
		t.Fatalf("hot key never moved across 4 epochs: %v", tops)
	}
}

func TestHotKeyGoldenLostUpdate(t *testing.T) {
	hk := NewHotKey(45, 24, 1.2, 100)
	m := runClean(t, hk, 600)
	victim := -1
	for k, v := range hk.ver {
		if v >= 2 {
			victim = k
			break
		}
	}
	if victim < 0 {
		t.Fatal("no multi-version key")
	}
	f, err := m.FS.Open(hk.path(victim))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(hk.frame(victim, hk.ver[victim]-1), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	v := hk.Check(m.FS)
	if v.Lost == 0 {
		t.Fatalf("rolled-back key not counted lost: %+v", v)
	}
}

func TestHotKeyGoldenSmashedFrame(t *testing.T) {
	hk := NewHotKey(47, 24, 1.2, 100)
	m := runClean(t, hk, 400)
	victim := -1
	for k, v := range hk.ver {
		if v > 0 {
			victim = k
			break
		}
	}
	if victim < 0 {
		t.Fatal("no written key")
	}
	flipByte(t, m, hk.path(victim), int64(hkHeader))
	v := hk.Check(m.FS)
	if len(v.Corruptions) == 0 {
		t.Fatalf("smashed key frame not detected: %+v", v)
	}
}

// --- scan ---

func TestScanCleanRun(t *testing.T) {
	sc := NewScan(51, 3, 6)
	runClean(t, sc, 500)
	if sc.ReadMismatches != 0 {
		t.Fatalf("online scan mismatches: %d", sc.ReadMismatches)
	}
	compacted := false
	for _, g := range sc.gen {
		if g > 1 {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("no segment ever compacted")
	}
}

func TestScanGoldenSmashedBatch(t *testing.T) {
	sc := NewScan(53, 2, 8)
	m := runClean(t, sc, 300)
	victim := -1
	for seg, n := range sc.batches {
		if n > 0 {
			victim = seg
			break
		}
	}
	if victim < 0 {
		t.Fatal("no appended batches")
	}
	flipByte(t, m, sc.path(victim), int64(scanHeader+8))
	v := sc.Check(m.FS)
	if len(v.Corruptions) == 0 {
		t.Fatalf("smashed batch not detected: %+v", v)
	}
}

func TestScanGoldenLostGeneration(t *testing.T) {
	sc := NewScan(55, 2, 4)
	m := runClean(t, sc, 400)
	victim := -1
	for seg, g := range sc.gen {
		if g >= 2 {
			victim = seg
			break
		}
	}
	if victim < 0 {
		t.Fatal("no compacted segment")
	}
	// Roll the header back a generation: acked compaction lost.
	f, err := m.FS.Open(sc.path(victim))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(sc.headerFrame(victim, sc.gen[victim]-1), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	v := sc.Check(m.FS)
	if v.Lost == 0 && len(v.Corruptions) == 0 {
		t.Fatalf("generation rollback not detected: %+v", v)
	}
}
