// Package fs implements the simulated Unix file system the Rio experiments
// run on: a classic inode/directory/bitmap design with 8 KB blocks, layered
// on the buffer cache + UBC (package cache) and the simulated disk.
//
// The same file system serves every row of Table 2 — the eight
// configurations differ only in their write Policy (when dirty buffers go
// to disk), exactly as in the paper, where UFS variants, AdvFS, MFS and
// Rio differ in write-back behaviour rather than layout.
package fs

import (
	"fmt"

	"rio/internal/cache"
	"rio/internal/disk"
	"rio/internal/ioretry"
)

// BlockSize is the file-system block size (one page).
const BlockSize = cache.BlockSize

// SectorsPerBlock converts blocks to disk sectors.
const SectorsPerBlock = BlockSize / disk.SectorSize

// Magic identifies a formatted volume.
const Magic uint64 = 0x52494F4653303031 // "RIOFS001"

// Superblock describes the volume layout. Block 0 holds it.
type Superblock struct {
	Magic        uint64
	NBlocks      int64 // total blocks on the volume
	NInodes      int64
	InodeStart   int64 // first inode-table block
	BitmapStart  int64
	DataStart    int64 // first data block
	JournalStart int64 // first journal block (AdvFS policy); end = NBlocks
	RootIno      uint32
}

const sbSize = 8 * 8

func (sb *Superblock) marshal(buf []byte) {
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, sb.Magic)
	put(8, uint64(sb.NBlocks))
	put(16, uint64(sb.NInodes))
	put(24, uint64(sb.InodeStart))
	put(32, uint64(sb.BitmapStart))
	put(40, uint64(sb.DataStart))
	put(48, uint64(sb.JournalStart))
	put(56, uint64(sb.RootIno))
}

func (sb *Superblock) unmarshal(buf []byte) error {
	get := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(buf[off+i]) << (8 * i)
		}
		return v
	}
	sb.Magic = get(0)
	if sb.Magic != Magic {
		return fmt.Errorf("fs: bad superblock magic %#x", sb.Magic)
	}
	sb.NBlocks = int64(get(8))
	sb.NInodes = int64(get(16))
	sb.InodeStart = int64(get(24))
	sb.BitmapStart = int64(get(32))
	sb.DataStart = int64(get(40))
	sb.JournalStart = int64(get(48))
	sb.RootIno = uint32(get(56))
	// Geometry sanity: every derived allocation (inode tables, bitmaps)
	// is bounded by these checks, so a corrupted superblock read off a
	// damaged disk can never drive fsck or mount into absurd allocations.
	const maxBlocks = 1 << 24 // 128 GB volume cap
	if sb.NBlocks <= 0 || sb.NBlocks > maxBlocks ||
		sb.NInodes <= 0 || sb.DataStart <= 0 ||
		sb.InodeStart != 1 ||
		sb.BitmapStart <= sb.InodeStart || sb.DataStart <= sb.BitmapStart ||
		sb.DataStart > sb.NBlocks || sb.JournalStart > sb.NBlocks ||
		sb.JournalStart < sb.DataStart ||
		sb.NInodes > (sb.BitmapStart-sb.InodeStart)*InodesPerBlock ||
		sb.RootIno == 0 || int64(sb.RootIno) >= sb.NInodes {
		return fmt.Errorf("fs: implausible superblock geometry")
	}
	return nil
}

// Inode modes.
const (
	ModeFree    = 0
	ModeFile    = 1
	ModeDir     = 2
	ModeSymlink = 3
)

// NDirect is the number of direct block pointers per inode.
const NDirect = 12

// InodeSize is the on-disk inode size.
const InodeSize = 128

// InodesPerBlock is how many inodes fit one block.
const InodesPerBlock = BlockSize / InodeSize

// PtrsPerBlock is how many block pointers an indirect block holds.
const PtrsPerBlock = BlockSize / 4

// MaxFileBlocks is the largest file in blocks.
const MaxFileBlocks = NDirect + PtrsPerBlock

// MaxTargetLen bounds a symbolic link's target: symlinks are "fast" —
// stored inline in the inode's spare bytes, never in data blocks. The
// paper notes symbolic links live in the buffer cache alongside inodes;
// inline targets make that literal.
const MaxTargetLen = InodeSize - (16 + 4*NDirect + 4) - 4

// Inode is the in-core form of an on-disk inode.
type Inode struct {
	Mode     uint32
	Nlink    uint32
	Size     int64
	Direct   [NDirect]int32 // block numbers; 0 = hole/unallocated
	Indirect int32          // indirect block number; 0 = none
	Target   string         // symlink target (ModeSymlink only, inline)
}

func (ino *Inode) marshal(buf []byte) {
	put32 := func(off int, v uint32) {
		for i := 0; i < 4; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put32(0, ino.Mode)
	put32(4, ino.Nlink)
	for i := 0; i < 8; i++ {
		buf[8+i] = byte(uint64(ino.Size) >> (8 * i))
	}
	for i, d := range ino.Direct {
		put32(16+4*i, uint32(d))
	}
	put32(16+4*NDirect, uint32(ino.Indirect))
	// Spare bytes hold the inline symlink target (length-prefixed).
	base := 16 + 4*NDirect + 4
	for i := base; i < InodeSize; i++ {
		buf[i] = 0
	}
	if ino.Mode == ModeSymlink {
		n := len(ino.Target)
		if n > MaxTargetLen {
			n = MaxTargetLen
		}
		put32(base, uint32(n))
		copy(buf[base+4:], ino.Target[:n])
	}
}

func (ino *Inode) unmarshal(buf []byte) {
	get32 := func(off int) uint32 {
		var v uint32
		for i := 0; i < 4; i++ {
			v |= uint32(buf[off+i]) << (8 * i)
		}
		return v
	}
	ino.Mode = get32(0)
	ino.Nlink = get32(4)
	var sz uint64
	for i := 0; i < 8; i++ {
		sz |= uint64(buf[8+i]) << (8 * i)
	}
	ino.Size = int64(sz)
	for i := range ino.Direct {
		ino.Direct[i] = int32(get32(16 + 4*i))
	}
	ino.Indirect = int32(get32(16 + 4*NDirect))
	ino.Target = ""
	if ino.Mode == ModeSymlink {
		base := 16 + 4*NDirect + 4
		n := int(get32(base))
		if n > MaxTargetLen {
			n = MaxTargetLen
		}
		ino.Target = string(buf[base+4 : base+4+n])
	}
}

// Blocks returns the number of blocks the file spans by size.
func (ino *Inode) Blocks() int64 {
	return (ino.Size + BlockSize - 1) / BlockSize
}

// Directory entries: 64 bytes each.
const (
	DirentSize      = 64
	MaxNameLen      = 56
	DirentsPerBlock = BlockSize / DirentSize
)

// Dirent is a directory entry. Ino 0 marks a free slot.
type Dirent struct {
	Ino  uint32
	Name string
}

func marshalDirent(d Dirent, buf []byte) {
	for i := 0; i < 4; i++ {
		buf[i] = byte(d.Ino >> (8 * i))
	}
	n := len(d.Name)
	buf[4] = byte(n)
	buf[5] = byte(n >> 8)
	buf[6], buf[7] = 0, 0
	copy(buf[8:8+MaxNameLen], d.Name)
	for i := 8 + n; i < DirentSize; i++ {
		buf[i] = 0
	}
}

func unmarshalDirent(buf []byte) Dirent {
	var ino uint32
	for i := 0; i < 4; i++ {
		ino |= uint32(buf[i]) << (8 * i)
	}
	n := int(buf[4]) | int(buf[5])<<8
	if n > MaxNameLen {
		n = MaxNameLen
	}
	return Dirent{Ino: ino, Name: string(buf[8 : 8+n])}
}

// Geometry computes the volume layout for a disk of nblocks with ninodes,
// reserving journalBlocks at the end (0 for non-journaling volumes).
func Geometry(nblocks, ninodes, journalBlocks int64) Superblock {
	inodeBlocks := (ninodes + InodesPerBlock - 1) / InodesPerBlock
	bitmapBlocks := (nblocks + BlockSize*8 - 1) / (BlockSize * 8)
	sb := Superblock{
		Magic:        Magic,
		NBlocks:      nblocks,
		NInodes:      ninodes,
		InodeStart:   1,
		BitmapStart:  1 + inodeBlocks,
		DataStart:    1 + inodeBlocks + bitmapBlocks,
		JournalStart: nblocks - journalBlocks,
		RootIno:      1,
	}
	return sb
}

// Mkfs formats the disk: writes the superblock, an empty inode table with
// a root directory, and the block bitmap. This is a boot-time utility; it
// writes the disk directly (no cache, no timing).
func Mkfs(d *disk.Disk, ninodes int64, journalBlocks int64) (Superblock, error) {
	nblocks := int64(d.NumSectors() / SectorsPerBlock)
	sb := Geometry(nblocks, ninodes, journalBlocks)
	if sb.DataStart >= sb.JournalStart {
		return sb, fmt.Errorf("fs: disk too small for geometry")
	}
	d.Format()

	// Format-time writes retry transients but cannot tolerate permanent
	// failure: an unformattable disk is an error, not a degraded volume.
	retry := ioretry.New(ioretry.Policy{MaxRetries: 4}, nil)
	writeBlock := func(block int64, buf []byte) error {
		return retry.Do(func() error {
			return d.Commit(int(block)*SectorsPerBlock, buf)
		})
	}

	// Superblock.
	blk := make([]byte, BlockSize)
	sb.marshal(blk)
	if err := writeBlock(0, blk); err != nil {
		return sb, fmt.Errorf("fs: mkfs superblock: %w", err)
	}

	// Inode table: all free except root (ino 1) = empty directory.
	for b := sb.InodeStart; b < sb.BitmapStart; b++ {
		blk := make([]byte, BlockSize)
		if b == sb.InodeStart {
			root := Inode{Mode: ModeDir, Nlink: 1, Size: 0}
			root.marshal(blk[1*InodeSize : 2*InodeSize]) // ino 1
		}
		if err := writeBlock(b, blk); err != nil {
			return sb, fmt.Errorf("fs: mkfs inode table: %w", err)
		}
	}

	// Bitmap: blocks below DataStart (and the journal region) are "used".
	for b := sb.BitmapStart; b < sb.DataStart; b++ {
		blk := make([]byte, BlockSize)
		first := (b - sb.BitmapStart) * BlockSize * 8
		for i := int64(0); i < BlockSize*8; i++ {
			block := first + i
			if block < sb.DataStart || (block >= sb.JournalStart && block < sb.NBlocks) {
				blk[i/8] |= 1 << (i % 8)
			}
		}
		if err := writeBlock(b, blk); err != nil {
			return sb, fmt.Errorf("fs: mkfs bitmap: %w", err)
		}
	}
	return sb, nil
}

// ReadSuperblock parses the superblock straight off the disk (mount path,
// fsck). Transient read errors are retried; a superblock that stays
// unreadable is reported, since nothing else can proceed without it.
func ReadSuperblock(d *disk.Disk) (Superblock, error) {
	var sb Superblock
	blk := make([]byte, BlockSize)
	retry := ioretry.New(ioretry.Policy{MaxRetries: 4}, nil)
	err := retry.Do(func() error {
		_, err := d.Read(0, blk)
		return err
	})
	if err != nil {
		return sb, fmt.Errorf("fs: reading superblock: %w", err)
	}
	err = sb.unmarshal(blk)
	return sb, err
}
