package server

import (
	"fmt"
	"sync"
	"time"

	"rio"
	"rio/internal/wire"
)

// reply is what a task's channel carries back: the response, plus — on
// the zero-copy read path — the fully serialized wire frame (length
// prefix included) whose data region was filled straight from cache
// frames. When frame is non-nil it is backed by a pooled buffer and the
// receiver owns it until ReleaseFrame; resp.Data is nil in that case
// (the payload lives only in the frame).
type reply struct {
	resp  *wire.Response
	frame []byte
}

// frameBufSize seeds new pool buffers with room for a block-sized read
// frame so the common case never grows.
const frameBufSize = 4 + 64 + 8192

// maxPooledFrames bounds the pool; beyond it buffers are dropped for
// the collector rather than pinning a burst's worth of frames forever.
const maxPooledFrames = 256

// framePool recycles wire-frame buffers for the zero-copy read path.
// Buffers cycle get -> ExecReadFrame -> reply channel -> TCP writer (or
// DoFrame caller) -> putFrameBuf. The slice-of-slices field is the
// shape the bufalias analyzer tracks: everything aliased from frameBufs
// is a pooled buffer that must not outlive its serve window.
type framePool struct {
	mu        sync.Mutex
	frameBufs [][]byte
}

func (p *framePool) get() []byte {
	p.mu.Lock()
	if n := len(p.frameBufs); n > 0 {
		b := p.frameBufs[n-1]
		p.frameBufs[n-1] = nil
		p.frameBufs = p.frameBufs[:n-1]
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	return make([]byte, 0, frameBufSize)
}

func (p *framePool) putFrameBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.frameBufs) < maxPooledFrames {
		p.frameBufs = append(p.frameBufs, b[:0])
	}
	p.mu.Unlock()
}

// DoFrame is Do for the zero-copy read path: an OpRead that succeeds
// returns its complete serialized response frame (4-byte length prefix
// included) backed by a pooled buffer, with the file data copied once —
// cache frame to wire frame — and resp.Data nil. The caller must hand
// the frame back via ReleaseFrame when done with it. Any other op, and
// any read that fails, returns frame == nil and a response exactly as
// Do would.
func (s *Server) DoFrame(req *wire.Request) ([]byte, *wire.Response) {
	r := s.do(req, true)
	return r.frame, r.resp
}

// ReleaseFrame returns a frame obtained from DoFrame to the pool. Safe
// on nil.
func (s *Server) ReleaseFrame(frame []byte) {
	if frame != nil {
		s.pool.putFrameBuf(frame)
	}
}

// handleReadFrame is handle() for a frame-path read: same health
// checks, but a successful read comes back as a serialized frame in a
// pooled buffer instead of a Data slice. Runs only on the shard
// goroutine.
func (sh *shard) handleReadFrame(req *wire.Request) ([]byte, *wire.Response, int) {
	if sh.isDown() {
		return nil, &wire.Response{ID: req.ID, Status: wire.StatusAgain,
			Msg: fmt.Sprintf("shard %d down (crashed; awaiting warmboot)", sh.id)}, -1
	}
	buf, resp, dataLen := ExecReadFrame(sh.sys, req, sh.pool.get())
	if crashed, why := sh.sys.Crashed(); crashed {
		sh.setDown(true)
		sh.txns = nil
		resp = &wire.Response{ID: req.ID, Status: wire.StatusAgain,
			Msg: fmt.Sprintf("shard %d crashed serving request: %s", sh.id, why)}
		dataLen = -1
	}
	if dataLen >= 0 {
		return buf, resp, dataLen
	}
	sh.pool.putFrameBuf(buf)
	return nil, resp, -1
}

// ExecReadFrame is Exec's zero-copy variant for wire.OpRead. Instead of
// allocating a Data slice and letting the transport serialize it into
// yet another buffer, it reserves the response's data region inside dst
// (wire.ReserveResponseFrame) and reads cache frames directly into that
// reservation — one copy, frame to wire. On success the returned buf
// holds the complete response frame and dataLen is the payload size
// (>= 0). On any failure dataLen is -1, resp carries the typed status,
// and buf holds no frame (the caller should re-pool it). The caller
// owns the single-goroutine discipline for sys.
func ExecReadFrame(sys *rio.System, req *wire.Request, dst []byte) (buf []byte, resp *wire.Response, dataLen int) {
	resp = &wire.Response{ID: req.ID}
	fail := func(err error) ([]byte, *wire.Response, int) {
		resp.Status, resp.Msg = statusOf(err)
		return dst, resp, -1
	}
	ino, size, isDir, err := sys.Lookup(req.Path)
	if err != nil {
		return fail(err)
	}
	if isDir {
		return fail(rio.ErrIsDir)
	}
	if req.Offset < 0 {
		resp.Status, resp.Msg = wire.StatusInvalid, "negative read offset"
		return dst, resp, -1
	}
	resp.Size = size
	want := int64(req.Len)
	if want == 0 || want > wire.MaxData {
		want = wire.MaxData
	}
	if remain := size - req.Offset; remain < want {
		want = remain
	}
	if want < 0 {
		want = 0
	}
	frame, off := wire.ReserveResponseFrame(dst, resp, int(want))
	if want > 0 {
		n, err := sys.ReadInoAt(ino, frame[off:off+int(want)], req.Offset)
		if err != nil {
			// The reservation holds partial bytes; drop the frame and
			// answer the error on the plain path.
			resp.Status, resp.Msg = statusOf(err)
			return frame[:0], resp, -1
		}
		if int64(n) != want {
			// The shard goroutine is the only writer, so the size cannot
			// have moved between Lookup and the read; a short read here
			// means the simulation refused mid-loop.
			resp.Status = wire.StatusIO
			resp.Msg = fmt.Sprintf("short read: %d of %d bytes", n, want)
			return frame[:0], resp, -1
		}
	}
	return frame, resp, int(want)
}

// replyChPool recycles the one-shot buffered channels do() blocks on.
// Every task is answered exactly once (by its shard goroutine or by
// waitDrain, never both), so a received-from channel is empty and safe
// to reuse.
var replyChPool = sync.Pool{New: func() any { return make(chan reply, 1) }}

// do submits one request and blocks until its reply. wantFrame selects
// the zero-copy read path for OpRead.
func (s *Server) do(req *wire.Request, wantFrame bool) reply {
	sh, errResp := s.route(req)
	if errResp != nil {
		return reply{resp: errResp}
	}
	ch := replyChPool.Get().(chan reply)
	t := task{req: req, resp: ch, enq: time.Now(), wantFrame: wantFrame}

	// The read lock pins the closed flag across the enqueue so Close
	// cannot close a shard channel between our check and our send.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		replyChPool.Put(ch)
		return reply{resp: &wire.Response{ID: req.ID, Status: wire.StatusClosed, Msg: "server closed"}}
	}
	select {
	case sh.ch <- t:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		sh.mu.Lock()
		sh.rejected++
		sh.mu.Unlock()
		replyChPool.Put(ch)
		return reply{resp: &wire.Response{ID: req.ID, Status: wire.StatusAgain,
			Msg: fmt.Sprintf("shard %d queue full", sh.id)}}
	}
	r := <-ch
	replyChPool.Put(ch)
	return r
}
