package workload

import (
	"testing"

	"rio/internal/fs"
	"rio/internal/machine"
)

func newRio(t *testing.T) *machine.Machine {
	t.Helper()
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyRio))
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemTestRunsClean(t *testing.T) {
	m := newRio(t)
	mt := NewMemTest(1, 1<<21)
	for i := 0; i < 400; i++ {
		if err := mt.Step(m.FS); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if mt.Steps() != 400 {
		t.Fatalf("steps = %d", mt.Steps())
	}
	if mt.FileCount() == 0 {
		t.Fatal("no files created")
	}
	if mt.ReadMismatches != 0 {
		t.Fatalf("read mismatches on a healthy system: %d", mt.ReadMismatches)
	}
	if mt.InFlight != nil {
		t.Fatal("in-flight op after clean steps")
	}
	if bad := mt.Verify(m.FS); len(bad) != 0 {
		t.Fatalf("verify on healthy system: %v", bad)
	}
}

func TestMemTestDeterministicStream(t *testing.T) {
	run := func() ([]string, int) {
		m := newRio(t)
		mt := NewMemTest(42, 1<<20)
		for i := 0; i < 200; i++ {
			if err := mt.Step(m.FS); err != nil {
				t.Fatal(err)
			}
		}
		var names []string
		for _, n := range mt.names {
			names = append(names, n)
		}
		return names, mt.FileCount()
	}
	n1, c1 := run()
	n2, c2 := run()
	if c1 != c2 || len(n1) != len(n2) {
		t.Fatalf("runs diverged: %d/%d files", c1, c2)
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("name %d differs: %s vs %s", i, n1[i], n2[i])
		}
	}
}

func TestMemTestDetectsCorruption(t *testing.T) {
	m := newRio(t)
	mt := NewMemTest(7, 1<<20)
	for i := 0; i < 100; i++ {
		if err := mt.Step(m.FS); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one file behind the oracle's back via a direct write.
	var victim string
	for p := range mt.oracle {
		if len(mt.oracle[p]) > 0 {
			victim = p
			break
		}
	}
	if victim == "" {
		t.Fatal("no victim")
	}
	f, err := m.FS.Open(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{mt.oracle[victim][0] ^ 0xff}, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	bad := mt.Verify(m.FS)
	if len(bad) == 0 {
		t.Fatal("corruption not detected")
	}
	found := false
	for _, c := range bad {
		if c.Path == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong victim reported: %v", bad)
	}
}

func TestMemTestDetectsMissingFile(t *testing.T) {
	m := newRio(t)
	mt := NewMemTest(9, 1<<20)
	for i := 0; i < 80; i++ {
		mt.Step(m.FS)
	}
	var victim string
	for p := range mt.oracle {
		victim = p
		break
	}
	if err := m.FS.Unlink(victim); err != nil {
		t.Fatal(err)
	}
	bad := mt.Verify(m.FS)
	if len(bad) == 0 {
		t.Fatal("missing file not detected")
	}
}

func TestMemTestInFlightMasking(t *testing.T) {
	m := newRio(t)
	mt := NewMemTest(11, 1<<20)
	for i := 0; i < 60; i++ {
		if err := mt.Step(m.FS); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-append: pick a file, set InFlight manually and
	// write half the data.
	var victim string
	for p, c := range mt.oracle {
		if len(c) > 10 {
			victim = p
			break
		}
	}
	old := mt.oracle[victim]
	mt.InFlight = &OpRecord{Kind: OpAppend, Path: victim,
		Off: int64(len(old)), Len: 20, PrevSize: int64(len(old))}
	f, _ := m.FS.Open(victim)
	f.WriteAt([]byte("partialpar"), int64(len(old))) // 10 of 20 bytes
	f.Close()
	if bad := mt.Verify(m.FS); len(bad) != 0 {
		t.Fatalf("in-flight append flagged as corruption: %v", bad)
	}
	// But damage OUTSIDE the in-flight range is still caught.
	f, _ = m.FS.Open(victim)
	f.WriteAt([]byte{old[0] ^ 0x55}, 0)
	f.Close()
	if bad := mt.Verify(m.FS); len(bad) == 0 {
		t.Fatal("corruption outside in-flight range missed")
	}
}

func TestMemTestInFlightDelete(t *testing.T) {
	m := newRio(t)
	mt := NewMemTest(13, 1<<20)
	for i := 0; i < 60; i++ {
		mt.Step(m.FS)
	}
	var victim string
	for p := range mt.oracle {
		victim = p
		break
	}
	mt.InFlight = &OpRecord{Kind: OpDelete, Path: victim}
	// Deleted or not — both acceptable.
	if bad := mt.Verify(m.FS); len(bad) != 0 {
		t.Fatalf("in-flight delete (still present): %v", bad)
	}
	m.FS.Unlink(victim)
	if bad := mt.Verify(m.FS); len(bad) != 0 {
		t.Fatalf("in-flight delete (gone): %v", bad)
	}
}

func TestMemTestUnexpectedFileDetected(t *testing.T) {
	m := newRio(t)
	mt := NewMemTest(15, 1<<20)
	for i := 0; i < 40; i++ {
		mt.Step(m.FS)
	}
	f, err := m.FS.Create("/mtphantom")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("ghost"))
	f.Close()
	bad := mt.Verify(m.FS)
	if len(bad) == 0 {
		t.Fatal("unexpected mt file not detected")
	}
	// Non-memTest files are ignored.
	f, _ = m.FS.Create("/otherfile")
	f.Close()
	bad2 := mt.Verify(m.FS)
	if len(bad2) != len(bad) {
		t.Fatal("non-memTest file flagged")
	}
}

func TestMemTestRespectsBudget(t *testing.T) {
	m := newRio(t)
	mt := NewMemTest(17, 64<<10) // tiny 64 KB budget
	for i := 0; i < 500; i++ {
		if err := mt.Step(m.FS); err != nil {
			t.Fatal(err)
		}
	}
	if mt.total > 3*(64<<10) {
		t.Fatalf("file set grew to %d bytes against a 64KB budget", mt.total)
	}
}

func TestMemTestWriteThroughMode(t *testing.T) {
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyUFSWTWrite))
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMemTest(19, 1<<20)
	mt.WriteThrough = true
	for i := 0; i < 100; i++ {
		if err := mt.Step(m.FS); err != nil {
			t.Fatal(err)
		}
	}
	if m.FS.Stats.Fsyncs == 0 {
		t.Fatal("write-through memTest never fsynced")
	}
	if bad := mt.Verify(m.FS); len(bad) != 0 {
		t.Fatalf("verify: %v", bad)
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpCreate; k <= OpStat; k++ {
		if k.String() == "?" {
			t.Fatalf("missing name for op %d", int(k))
		}
	}
}
