package server

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rio/internal/wire"
)

// TestCrashUnderLoadNoAckedWriteLost is the serving-layer version of
// the paper's headline claim, run with real concurrency: 8 closed-loop
// clients hammer a 4-shard server through the in-process transport
// while shard 2 is crashed and warm-rebooted mid-workload.
//
// The assertions, in order of importance:
//
//  1. Acknowledged durability (Rio's no-write-behind-loss guarantee):
//     every write a client saw StatusOK for — including writes
//     acknowledged on shard 2 just before its crash — reads back
//     intact after the warm reboot. Zero acknowledged bytes lost.
//  2. Outage isolation: while shard 2 is down, the other shards keep
//     completing requests (their op counters advance during the
//     outage window).
//  3. EAGAIN discipline: requests caught by the outage surface as
//     retryable statuses, and the retry loop rides through them.
func TestCrashUnderLoadNoAckedWriteLost(t *testing.T) {
	const (
		clients    = 8
		shards     = 4
		crashShard = 2
		perClient  = 120 // ops per client, enough to straddle the outage
	)
	s := newTestServer(t, Config{Shards: shards, Seed: 1996, QueueDepth: 64})

	var (
		crashed    atomic.Bool   // controller has issued the crash
		rebooted   atomic.Bool   // controller has issued the warmboot
		opsStarted atomic.Uint64 // trips the controller partway in
	)

	// acked[c] maps path -> last payload client c saw StatusOK for.
	acked := make([]map[string][]byte, clients)
	var retried, exhausted uint64
	var mu sync.Mutex

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &RetryClient{C: MemClient{S: s},
				Pol: RetryPolicy{MaxRetries: 60, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}}
			mine := make(map[string][]byte, perClient)
			for i := 0; i < perClient; i++ {
				opsStarted.Add(1)
				path := fmt.Sprintf("/c%d-f%03d", c, i%40)
				payload := []byte(fmt.Sprintf("client %d op %d", c, i))
				resp, err := cl.Do(&wire.Request{ID: uint64(c)<<32 | uint64(i),
					Op: wire.OpWrite, Shard: -1, Path: path, Data: payload})
				if err != nil {
					t.Errorf("client %d: transport error: %v", c, err)
					return
				}
				switch resp.Status {
				case wire.StatusOK:
					mine[path] = payload
				case wire.StatusAgain:
					// Retries exhausted mid-outage: the write was never
					// applied (the down shard refuses, it does not
					// half-apply), so nothing is recorded.
				default:
					t.Errorf("client %d: write %s: %+v", c, path, resp)
					return
				}
				// Mix in reads so the load is not write-only.
				if i%3 == 0 {
					cl.Do(&wire.Request{ID: 1, Op: wire.OpRead, Shard: -1, Path: path})
				}
			}
			mu.Lock()
			acked[c] = mine
			retried += cl.Stats.Retries
			exhausted += cl.Stats.Exhausted
			mu.Unlock()
		}()
	}

	// Controller: crash shard 2 partway through, hold the outage long
	// enough for clients to slam into it, then warm-reboot.
	wg.Add(1)
	var duringOutage [shards]uint64
	go func() {
		defer wg.Done()
		for opsStarted.Load() < clients*perClient/4 {
			time.Sleep(time.Millisecond)
		}
		if r := s.Do(&wire.Request{ID: 9000, Op: wire.OpCrash, Shard: crashShard}); r.Status != wire.StatusOK {
			t.Errorf("admin crash: %+v", r)
			return
		}
		crashed.Store(true)
		before := s.Metrics()
		time.Sleep(20 * time.Millisecond) // outage window under live load
		after := s.Metrics()
		for i := 0; i < shards; i++ {
			duringOutage[i] = after.Shards[i].Ops - before.Shards[i].Ops
		}
		if r := s.Do(&wire.Request{ID: 9001, Op: wire.OpWarmboot, Shard: crashShard}); r.Status != wire.StatusOK {
			t.Errorf("admin warmboot: %+v", r)
			return
		}
		rebooted.Store(true)
	}()
	wg.Wait()

	if !crashed.Load() || !rebooted.Load() {
		t.Fatal("controller did not complete the crash/warmboot cycle")
	}

	// (2) Outage isolation: the healthy shards made progress while
	// shard 2 was down. (The down shard may also count ops — it is
	// answering EAGAIN — the requirement is that healthy shards never
	// stalled.)
	var healthyProgress uint64
	for i := 0; i < shards; i++ {
		if i != crashShard {
			healthyProgress += duringOutage[i]
		}
	}
	if healthyProgress == 0 {
		t.Fatalf("healthy shards served zero requests during the outage: %v", duringOutage)
	}

	// (3) The outage was actually felt (otherwise the test proved
	// nothing): some requests were retried or exhausted.
	m := s.Metrics()
	if m.Shards[crashShard].Retried == 0 && retried == 0 {
		t.Fatal("no request ever saw the outage; crash window missed the load")
	}

	// (1) Acknowledged durability: every acknowledged write reads back
	// intact, bit for bit. Later acknowledged writes to the same path
	// supersede earlier ones (closed-loop clients, so per client the
	// map already holds the last ack; distinct clients write distinct
	// paths).
	checked, onCrashedShard := 0, 0
	for c := 0; c < clients; c++ {
		if acked[c] == nil {
			t.Fatalf("client %d never reported", c)
		}
		for path, want := range acked[c] {
			r := s.Do(&wire.Request{ID: 8000, Op: wire.OpRead, Shard: -1, Path: path})
			if r.Status != wire.StatusOK {
				t.Fatalf("acked write %s unreadable after warm reboot: %+v", path, r)
			}
			if !bytes.Equal(r.Data, want) {
				t.Fatalf("acked write %s corrupted: got %q, want %q", path, r.Data, want)
			}
			checked++
			if s.ShardOf(path) == crashShard {
				onCrashedShard++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no acknowledged writes to verify")
	}
	if onCrashedShard == 0 {
		t.Fatal("no acknowledged writes landed on the crashed shard; durability across the crash went unexercised")
	}
	t.Logf("verified %d acked writes (%d on crashed shard %d); %d retries, %d exhausted, healthy-shard ops during outage %v",
		checked, onCrashedShard, crashShard, retried, exhausted, duringOutage)
}

// TestFrameReadRacesCrashNeverTorn is the changing-window check for the
// zero-copy read path: served frame reads hammer files on a shard that
// is being crashed and warm-rebooted in a loop. Every read must come
// back either StatusAgain (the shard was down, no frame) or as a
// complete wire frame whose payload is byte-exact — each file is filled
// with its own constant byte, so a buffer torn mid-serialization (half
// one file, half stale pool contents, or a frame released while the
// writer still held it) cannot decode to a uniform payload of the right
// length. A multi-block file rides along to cross block boundaries
// within one reserved data region.
func TestFrameReadRacesCrashNeverTorn(t *testing.T) {
	const (
		crashShard = 1
		readers    = 4
		files      = 4
		fileSize   = 8192        // one full cache block
		bigSize    = 3*8192 + 17 // spans blocks, ragged tail
		cycles     = 8
	)
	s := newTestServer(t, Config{Shards: 2, Seed: 2024, QueueDepth: 64})

	paths := make([]string, files+1)
	fills := make([]byte, files+1)
	sizes := make([]int, files+1)
	for i := 0; i < files; i++ {
		paths[i] = pathOnShard(t, s, crashShard, fmt.Sprintf("zc%d", i))
		fills[i] = byte(0x41 + i)
		sizes[i] = fileSize
	}
	paths[files] = pathOnShard(t, s, crashShard, "zcbig")
	fills[files] = 0x7A
	sizes[files] = bigSize
	for i, p := range paths {
		if r := s.Do(&wire.Request{ID: uint64(i), Op: wire.OpWrite, Path: p,
			Data: bytes.Repeat([]byte{fills[i]}, sizes[i])}); r.Status != wire.StatusOK {
			t.Fatalf("seed %s: %+v", p, r)
		}
	}

	var stop atomic.Bool
	var okReads, againReads atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				fi := (w + i) % len(paths)
				frame, resp := s.DoFrame(&wire.Request{ID: uint64(w)<<32 | uint64(i),
					Op: wire.OpRead, Path: paths[fi]})
				switch resp.Status {
				case wire.StatusOK:
					dec, err := wire.DecodeResponse(frame[4:])
					if err != nil {
						t.Errorf("reader %d: frame undecodable: %v", w, err)
					} else if len(dec.Data) != sizes[fi] {
						t.Errorf("reader %d: %s returned %d bytes, want %d",
							w, paths[fi], len(dec.Data), sizes[fi])
					} else {
						for off, b := range dec.Data {
							if b != fills[fi] {
								t.Errorf("reader %d: %s torn at offset %d: byte %#x, want %#x",
									w, paths[fi], off, b, fills[fi])
								break
							}
						}
					}
					okReads.Add(1)
					s.ReleaseFrame(frame)
				case wire.StatusAgain:
					againReads.Add(1) // shard down: no frame, by contract
				default:
					t.Errorf("reader %d: %s: %+v", w, paths[fi], resp)
				}
			}
		}(w)
	}

	// Crash/warmboot the shard in a loop while the readers run.
	for c := 0; c < cycles; c++ {
		if r := s.Do(&wire.Request{ID: 9100, Op: wire.OpCrash, Shard: crashShard}); r.Status != wire.StatusOK {
			t.Fatalf("cycle %d crash: %+v", c, r)
		}
		time.Sleep(2 * time.Millisecond)
		if r := s.Do(&wire.Request{ID: 9101, Op: wire.OpWarmboot, Shard: crashShard}); r.Status != wire.StatusOK {
			t.Fatalf("cycle %d warmboot: %+v", c, r)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if okReads.Load() == 0 {
		t.Fatal("no frame read ever succeeded; the race never exercised the zero-copy path")
	}
	if againReads.Load() == 0 {
		t.Fatal("no frame read ever hit the outage; the crash window missed the load")
	}
	t.Logf("%d byte-exact frame reads, %d StatusAgain across %d crash/warmboot cycles",
		okReads.Load(), againReads.Load(), cycles)
}
