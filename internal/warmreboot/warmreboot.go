// Package warmreboot implements Rio's reboot paths.
//
// Warm reboot (§2.2 of the paper) happens in two steps. Before the VM and
// file system initialise, the booting kernel dumps all of physical memory
// (the paper dumps to the swap partition; we hold the dump in the
// simulator) and restores dirty *metadata* buffers straight to their disk
// blocks using the disk addresses stored in the registry — so the file
// system is intact before fsck checks it. After the system is fully booted,
// a user-level process walks the dump and restores the dirty UBC pages
// through normal system calls (open/write).
//
// Because the dump is taken from a freshly booting, healthy system rather
// than the dying one, it "always works" — unlike a crash dump. This
// package hardens that claim against the two adversaries the paper does
// not model: a storage device that fails during the restore, and a second
// crash in the middle of recovery. Every restore action is per-entry
// quarantine-and-continue (an entry that cannot be restored is counted
// and skipped, never allowed to abort the pass), orphaned data pages are
// salvaged into /lost+found, and the whole protocol is an idempotent
// function of the immutable memory dump — rerunning it after an
// interruption converges to the same file-system state as an
// uninterrupted pass.
package warmreboot

import (
	"errors"
	"fmt"

	"rio/internal/fs"
	"rio/internal/ioretry"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/mem"
	"rio/internal/registry"
)

// ErrInterrupted reports that a simulated second crash (Options.
// CrashAtStep) cut the recovery short. The machine is mid-restore; the
// caller restarts recovery by calling FromDump again with the same dump.
var ErrInterrupted = errors.New("warmreboot: recovery interrupted by crash")

// Options tunes the recovery pass. The zero value is NOT the default —
// use DefaultOptions.
type Options struct {
	// CrashAtStep, when >= 0, interrupts the recovery after that many
	// restore steps (metadata commits, fsck, boot, and per-page data
	// restores each count one step): FromDump returns ErrInterrupted
	// with the volume part-restored. Use -1 to run to completion. An
	// uninterrupted pass reports its total step count in Report.Steps,
	// which bounds the useful range.
	CrashAtStep int
	// Salvage directs orphaned dirty data pages — pages whose file no
	// longer exists after the metadata restore — into /lost+found
	// instead of dropping them.
	Salvage bool
	// Retry is the policy for recovery-path disk I/O (metadata commits;
	// the post-boot data restore inherits the mount's own retry layer).
	Retry ioretry.Policy
}

// DefaultOptions returns the production recovery configuration:
// uninterrupted, salvaging, with the standard retry policy.
func DefaultOptions() Options {
	return Options{CrashAtStep: -1, Salvage: true, Retry: ioretry.DefaultPolicy()}
}

// Report describes what a warm reboot found and restored.
type Report struct {
	// Entries is the number of valid registry entries in the dump.
	Entries int
	// BadEntries failed the registry's per-entry CRC (garbage skipped).
	BadEntries int
	// MetaRestored / DataRestored count dirty buffers written back.
	MetaRestored int
	DataRestored int
	// MetaFailed / DataFailed count dirty buffers quarantined because
	// the restore write failed even after retries. The pass continues;
	// the loss is bounded to these entries and visible here.
	MetaFailed int
	DataFailed int
	// Changing counts buffers that were mid-write at crash time; their
	// checksums cannot classify them.
	Changing int
	// ChecksumMismatches are non-changing buffers whose contents no
	// longer match their registry checksum: direct corruption, detected.
	ChecksumMismatches int
	// OrphanData counts dirty data pages whose file could not be found
	// after the metadata restore and that could not be salvaged.
	OrphanData int
	// Salvaged counts orphaned data pages preserved under /lost+found.
	Salvaged int
	// SkippedInvalid counts entries with out-of-range frames/blocks.
	SkippedInvalid int
	// CloseErrors counts restore file handles whose Close failed.
	CloseErrors int
	// Steps is the number of restore steps the pass executed (see
	// Options.CrashAtStep).
	Steps int
	// VolumeLost means the volume could not even be checked (superblock
	// unreadable or implausible after the metadata restore): recovery
	// stopped before booting, and the machine is not running. This is a
	// reported outcome, not an error — the caller decides what a dead
	// volume means for it.
	VolumeLost bool
	// Fsck is the consistency-check report after the metadata restore.
	Fsck fs.FsckReport
}

func (r *Report) String() string {
	return fmt.Sprintf("warm reboot: %d entries (%d bad), %d meta + %d data restored, %d quarantined, %d changing, %d checksum mismatches, %d orphans, %d salvaged",
		r.Entries, r.BadEntries, r.MetaRestored, r.DataRestored,
		r.MetaFailed+r.DataFailed, r.Changing, r.ChecksumMismatches,
		r.OrphanData, r.Salvaged)
}

// Warm performs a warm reboot of a crashed machine in place: dump memory,
// restore metadata to disk, fsck, boot a fresh kernel, and restore the UBC
// through system calls. On return the machine is booted and its file
// system reflects the pre-crash file cache.
func Warm(m *machine.Machine) (*Report, error) {
	// Step 1: dump all of physical memory before anything reinitialises.
	return FromDump(m, m.Mem.Dump())
}

// FromDump performs the warm-reboot restore from an explicit memory image
// — either the in-place dump Warm takes at boot, or a dump a UPS wrote to
// the swap disk as the power failed (the paper's §1 power-outage story) —
// with default options.
func FromDump(m *machine.Machine, dump []byte) (*Report, error) {
	return FromDumpOpts(m, dump, DefaultOptions())
}

// FromDumpOpts is FromDump with explicit Options.
//
// The protocol is idempotent over the dump: every metadata commit writes
// the same bytes to the same blocks, fsck converges, and every data-page
// write lands the same bytes at the same file offsets, so calling it
// again after an ErrInterrupted return (or after a fresh crash mid-
// recovery) completes the restore with the same final state an
// uninterrupted pass produces.
func FromDumpOpts(m *machine.Machine, dump []byte, opts Options) (*Report, error) {
	rep := &Report{}

	// step bookkeeping for the injected-second-crash protocol.
	interrupted := func() bool {
		return opts.CrashAtStep >= 0 && rep.Steps >= opts.CrashAtStep
	}

	// The registry lives at a machine-fixed location; take its frame
	// list before tearing the old kernel's state down.
	regFrames := m.Reg.Frames()

	entries, bad := registry.Parse(dump, regFrames)
	rep.Entries = len(entries)
	rep.BadEntries = bad

	nframes := m.Mem.NumFrames()
	// pageOf returns the frame's page image, or nil when the dump is too
	// short to contain it (e.g. a truncated UPS dump): the dump is
	// untrusted input and must never be sliced past its end.
	pageOf := func(frame uint32) []byte {
		base := mem.FrameBase(int(frame))
		if base+mem.PageSize > uint64(len(dump)) {
			return nil
		}
		return dump[base : base+mem.PageSize]
	}

	// Classify and verify every entry first.
	var metaDirty, dataDirty []registry.ParsedEntry
	for _, e := range entries {
		if int(e.Frame) >= nframes || e.Size > mem.PageSize || pageOf(e.Frame) == nil {
			rep.SkippedInvalid++
			continue
		}
		if e.Flags&registry.FlagChanging != 0 {
			rep.Changing++
		} else if e.Cksum != 0 {
			if kernel.CksumBytes(pageOf(e.Frame)) != e.Cksum {
				rep.ChecksumMismatches++
			}
		}
		if e.Flags&registry.FlagDirty == 0 {
			continue // clean: the disk copy is current
		}
		switch e.Kind {
		case registry.KindMeta:
			metaDirty = append(metaDirty, e)
		case registry.KindData:
			dataDirty = append(dataDirty, e)
		}
	}

	// Step 2: restore dirty metadata straight to disk, pre-fsck. Each
	// commit retries transient device errors; a block that stays
	// unwritable is quarantined (MetaFailed) and the pass continues —
	// fsck repairs whatever inconsistency the missing block leaves.
	retry := ioretry.New(opts.Retry, m.Engine.Clock)
	for _, e := range metaDirty {
		if interrupted() {
			return rep, ErrInterrupted
		}
		// Block 0 is the superblock, which is never cached: a registry
		// entry claiming it is corrupt, and restoring it would destroy
		// the volume.
		if e.Block < 1 || e.Block*fs.SectorsPerBlock >= int64(m.Disk.NumSectors()) {
			rep.SkippedInvalid++
			continue
		}
		e := e
		err := retry.Do(func() error {
			return m.Disk.Commit(int(e.Block)*fs.SectorsPerBlock, pageOf(e.Frame))
		})
		if err != nil {
			rep.MetaFailed++
		} else {
			rep.MetaRestored++
		}
		rep.Steps++
	}

	// Step 3: fsck the (now metadata-complete) volume. An unreadable or
	// implausible superblock means there is no volume to check: report
	// VolumeLost rather than aborting with an error, so campaign callers
	// can score it as the corruption outcome it is.
	if interrupted() {
		return rep, ErrInterrupted
	}
	fsckRep, err := fs.Fsck(m.Disk)
	if err != nil {
		rep.VolumeLost = true
		return rep, nil
	}
	rep.Fsck = fsckRep
	rep.Steps++

	// Step 4: boot a fresh kernel. Pool frame contents are irrelevant now
	// — everything needed is in the dump.
	if interrupted() {
		return rep, ErrInterrupted
	}
	if err := m.Boot(nil); err != nil {
		// The volume passed fsck but still won't mount — e.g. a
		// misdirected write during the restore or fsck's own repairs
		// landed on the superblock. Same outcome as an unfsckable
		// volume: lost, scored by the caller, not an abort.
		rep.VolumeLost = true
		return rep, nil
	}
	rep.Steps++

	// Step 5: user-level restore of UBC pages via normal system calls.
	// Every page is restored or accounted (DataFailed / OrphanData /
	// Salvaged); no failure aborts the loop — the early-return here used
	// to abandon the remaining pages unreported.
	paths := inodePaths(m.FS)
	for _, e := range dataDirty {
		if interrupted() {
			return rep, ErrInterrupted
		}
		page := pageOf(e.Frame)
		n := int(e.Size)
		if n > mem.PageSize {
			n = mem.PageSize
		}
		path, ok := paths[e.Ino]
		if !ok {
			// The file is gone (its metadata never reached the disk, or
			// fsck removed it): salvage the bytes rather than drop them.
			if opts.Salvage && salvagePage(m.FS, e, page[:n], rep) {
				rep.Salvaged++
			} else {
				rep.OrphanData++
			}
			rep.Steps++
			continue
		}
		f, err := m.FS.Open(path)
		if err != nil {
			if opts.Salvage && salvagePage(m.FS, e, page[:n], rep) {
				rep.Salvaged++
			} else {
				rep.OrphanData++
			}
			rep.Steps++
			continue
		}
		restored := true
		if n > 0 {
			if _, err := f.WriteAt(page[:n], e.Off); err != nil {
				restored = false
			}
		}
		if err := f.Close(); err != nil {
			rep.CloseErrors++
		}
		if restored {
			rep.DataRestored++
		} else {
			rep.DataFailed++
		}
		rep.Steps++
	}
	return rep, nil
}

// salvageDir is where orphaned data pages land.
const salvageDir = "/lost+found"

// salvagePage writes an orphaned dirty page to /lost+found/ino-<n> at its
// original file offset, so several pages of the same lost file reassemble
// into one salvage file. Returns false (and leaves accounting to the
// caller) when the salvage itself fails — e.g. a degraded read-only
// mount, or an offset past the maximum file size.
func salvagePage(fsys *fs.FS, e registry.ParsedEntry, page []byte, rep *Report) bool {
	if _, err := fsys.Stat(salvageDir); err != nil {
		if err := fsys.Mkdir(salvageDir); err != nil {
			return false
		}
	}
	name := fmt.Sprintf("%s/ino-%d", salvageDir, e.Ino)
	f, err := fsys.Open(name)
	if err != nil {
		if f, err = fsys.Create(name); err != nil {
			return false
		}
	}
	ok := true
	if len(page) > 0 {
		if _, err := f.WriteAt(page, e.Off); err != nil {
			ok = false
		}
	}
	if err := f.Close(); err != nil {
		rep.CloseErrors++
	}
	return ok
}

// inodePaths walks the mounted tree building an inode -> path index for the
// user-level UBC restorer. The /lost+found subtree is excluded: salvage
// files from an earlier interrupted attempt must never capture a dirty
// page that happens to share their (fresh) inode number.
//
// The walk never fails: a subtree whose ReadDir errors (a faulted kernel
// can leave a dirent typed as a directory pointing at a file, and fsck
// does not cross-check dirent type bits) is simply skipped. Pages whose
// files live under it lose their path and fall through to the orphan
// salvage — quarantined, not an aborted recovery.
func inodePaths(fsys *fs.FS) map[uint32]string {
	out := make(map[uint32]string)
	seen := make(map[uint32]bool) // dir inodes visited: corrupt trees can cycle
	var walk func(dir string)
	walk = func(dir string) {
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if p == salvageDir {
				continue
			}
			if e.IsDir {
				if !seen[e.Ino] {
					seen[e.Ino] = true
					walk(p)
				}
			} else {
				out[e.Ino] = p
			}
		}
	}
	walk("/")
	return out
}

// Cold performs a cold reboot: memory is lost (scrambled), the volume is
// fsck'd, and a fresh kernel boots. This is the disk-based baseline's
// recovery path — only what reached the disk survives.
func Cold(m *machine.Machine, seed uint64) (fs.FsckReport, error) {
	m.Mem.Scramble(seed)
	rep, err := fs.Fsck(m.Disk)
	if err != nil {
		return rep, err
	}
	if err := m.Boot(nil); err != nil {
		return rep, err
	}
	return rep, nil
}
