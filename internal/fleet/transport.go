package fleet

import (
	"fmt"
	"sync"

	"rio/internal/wire"
)

// Transport carries one request from one fleet participant to another
// and returns the response. "from" matters: partitions are between
// pairs of participants, and a link that is down fails the send with
// ErrUnreachable — the caller's bounded retry and the coordinator's
// failure detection are built on exactly that signal.
type Transport interface {
	Send(from, to string, req *wire.Request) (*wire.Response, error)
}

// ErrUnreachable is the transport's typed send failure: the peer's
// machine is dead or the link is partitioned. Callers treat it like a
// network timeout — retry, reroute, or report the peer suspect.
var ErrUnreachable = fmt.Errorf("fleet: peer unreachable")

// Coordinator and client participate in the transport under fixed
// names, so a partition plan can isolate a node from the control plane
// (heartbeats stop, promotion triggers) as easily as from its peers.
const (
	CoordName  = "!coord"
	ClientName = "!client"
)

// MemTransport is the in-process fabric: every node in one process,
// sends delivered synchronously by direct call. Machine kills and link
// partitions are flags checked on every send — which makes fault
// injection exact and replayable, the property the campaign gates on.
type MemTransport struct {
	mu     sync.Mutex
	nodes  map[string]*Node
	killed map[string]bool
	cut    map[string]map[string]bool
}

// NewMemTransport returns an empty fabric; nodes attach as they boot.
func NewMemTransport() *MemTransport {
	return &MemTransport{
		nodes:  make(map[string]*Node),
		killed: make(map[string]bool),
		cut:    make(map[string]map[string]bool),
	}
}

// Attach registers a node under its id.
func (t *MemTransport) Attach(n *Node) {
	t.mu.Lock()
	t.nodes[n.ID()] = n
	t.mu.Unlock()
}

// Kill marks a node's machine dead: every send to it fails until
// Revive. The node's in-memory state is the caller's to discard — a
// machine loss loses the protected cache too, which is the entire
// reason the fleet exists.
func (t *MemTransport) Kill(node string) {
	t.mu.Lock()
	t.killed[node] = true
	t.mu.Unlock()
}

// Revive clears a kill.
func (t *MemTransport) Revive(node string) {
	t.mu.Lock()
	delete(t.killed, node)
	t.mu.Unlock()
}

// Cut severs the link between a and b in both directions.
func (t *MemTransport) Cut(a, b string) {
	t.mu.Lock()
	t.cutLocked(a, b)
	t.mu.Unlock()
}

func (t *MemTransport) cutLocked(a, b string) {
	if t.cut[a] == nil {
		t.cut[a] = make(map[string]bool)
	}
	if t.cut[b] == nil {
		t.cut[b] = make(map[string]bool)
	}
	t.cut[a][b] = true
	t.cut[b][a] = true
}

// Heal restores the link between a and b.
func (t *MemTransport) Heal(a, b string) {
	t.mu.Lock()
	delete(t.cut[a], b)
	delete(t.cut[b], a)
	t.mu.Unlock()
}

// Isolate cuts node off from every other participant, the coordinator
// and clients included — a full network partition of one machine.
func (t *MemTransport) Isolate(node string) {
	t.mu.Lock()
	for id := range t.nodes {
		if id != node {
			t.cutLocked(node, id)
		}
	}
	t.cutLocked(node, CoordName)
	t.cutLocked(node, ClientName)
	t.mu.Unlock()
}

// Rejoin heals every link cut by Isolate (and any pairwise cuts
// touching node).
func (t *MemTransport) Rejoin(node string) {
	t.mu.Lock()
	for other := range t.cut[node] {
		delete(t.cut[other], node)
	}
	delete(t.cut, node)
	t.mu.Unlock()
}

// Send implements Transport. The target serves the request
// synchronously on the caller's goroutine; reachability is evaluated
// per send, so a kill or cut lands between any two requests exactly.
func (t *MemTransport) Send(from, to string, req *wire.Request) (*wire.Response, error) {
	t.mu.Lock()
	n, ok := t.nodes[to]
	dead := t.killed[to] || t.killed[from]
	cut := t.cut[from][to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: no node %q", ErrUnreachable, to)
	}
	if dead || cut {
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	return n.Serve(from, req), nil
}
