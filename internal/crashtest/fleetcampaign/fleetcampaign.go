// Package fleetcampaign is the crash campaign for the replicated
// fleet. It answers the question the single-machine campaigns in
// internal/crashtest cannot: does replication actually extend Rio's
// durability promise from OS crashes to machine loss?
//
// Each run boots a small replicated fleet, acknowledges a batch of
// writes (each key half absolute write, half append — the op shape
// whose retries must stay idempotent), injects one fleet-level fault —
// a machine kill, a full network partition of the primary, a backup
// loss, a plain OS crash, or a pairwise cut that leaves the primary
// client-reachable but peer-blind — lets the coordinator converge,
// keeps writing, and then demands every acknowledged write read back
// byte-equal. The gate is absolute: the Lost and Stale columns must be
// zero for every fault kind. Like the other campaigns, every plan is a
// pure function of (campaign seed, plan index), and results fold in
// index order, so the report is byte-identical at any worker count.
//
// It lives in its own package (not crashtest proper) because the root
// rio package imports crashtest, and this campaign needs
// internal/fleet, which needs rio — same determinism discipline, one
// level down the import graph.
package fleetcampaign

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"rio/internal/fleet"
	"rio/internal/sim"
	"rio/internal/wire"
)

// salt namespaces the fleet campaign's derived streams.
const salt = 0xF1EE7CA3

// FaultKind is the fault a plan injects. Plans cycle through the kinds
// by index, so any contiguous run of N >= 4 plans covers all four.
type FaultKind uint8

const (
	// KillPrimary: the primary's machine dies — memory, protected cache
	// and all. Promotion must recover every acked write from a backup.
	KillPrimary FaultKind = iota
	// PartitionPrimary: the primary is unreachable but intact; it is
	// promoted over, then healed, and must end up fenced.
	PartitionPrimary
	// KillBackup: a backup dies. Writes must refuse to ack until the
	// coordinator evicts the dead peer and repairs onto a spare.
	KillBackup
	// OSCrash: the primary's OS crashes and warm-reboots — the paper's
	// own case. No promotion, no snapshot, nothing lost.
	OSCrash
	// PartitionPair: pairwise cuts sever the primary from its peers and
	// the coordinator while clients can still reach it. Promotion
	// happens behind its back; the deposed-but-ignorant primary must
	// refuse reads (the read fence) instead of serving stale bytes.
	PartitionPair

	NumKinds = 5
)

func (k FaultKind) String() string {
	switch k {
	case KillPrimary:
		return "kill-primary"
	case PartitionPrimary:
		return "partition-primary"
	case KillBackup:
		return "kill-backup"
	case OSCrash:
		return "os-crash"
	case PartitionPair:
		return "partition-pair"
	}
	return fmt.Sprintf("fleet-fault(%d)", uint8(k))
}

// Plan is one run's complete script — fault kind, write counts, seed —
// derived from (campaign seed, index) alone.
type Plan struct {
	Index    int
	Seed     uint64
	Nodes    int
	Shards   int
	Replicas int
	Kind     FaultKind
	// PreWrites writes are acked before the fault; PostWrites after the
	// coordinator converges. Every acked write from both phases must
	// read back byte-equal at the end.
	PreWrites  int
	PostWrites int
}

// PlanFor derives plan i of a campaign. Pure function: same seed and
// index, same plan, on any worker at any time.
func PlanFor(campaignSeed uint64, i int) Plan {
	s := sim.Mix(campaignSeed, salt, uint64(i))
	return Plan{
		Index:      i,
		Seed:       s,
		Nodes:      3,
		Shards:     2,
		Replicas:   2,
		Kind:       FaultKind(i % NumKinds),
		PreWrites:  4 + int(sim.Mix(s, 1)%5),
		PostWrites: 4 + int(sim.Mix(s, 2)%5),
	}
}

// payload derives write k's bytes.
func payload(seed uint64, k int) []byte {
	n := 16 + int(sim.Mix(seed, 0xDA7A, uint64(k))%48)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(sim.Mix(seed, uint64(k), uint64(i)))
	}
	return b
}

// RunResult is one run's outcome.
type RunResult struct {
	Plan Plan

	Acked   int // writes acknowledged
	Unacked int // writes that never acked within the retry budget
	// Lost: acked writes that failed to read back byte-equal after the
	// fault — the number the whole layer exists to keep at zero.
	Lost int
	// Stale: reads a deposed primary served with bytes that contradict
	// acked state (the partition-pair probe). Must be zero: a read that
	// misses acked writes breaks the same promise as losing them.
	Stale int

	Promotions int
	Reconfigs  int
	Repairs    int
	Redirects  uint64
	Retries    uint64
	Err        string
}

// retryRounds bounds how many tick-and-retry rounds one write (or
// verify read) gets before it is scored unacked/lost. Each round is a
// full client attempt budget plus one coordinator tick, so the budget
// covers detection (MissThreshold ticks) and repair with slack.
const retryRounds = 8

// RunOne executes one fleet crash plan. Traffic is serialized and
// coordinator ticks are explicit, so the run is a deterministic
// function of the plan.
func RunOne(p Plan) (res RunResult) {
	res = RunResult{Plan: p}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Sprintf("fleet run panic (seed=%d kind=%v): %v", p.Seed, p.Kind, r)
		}
	}()

	f, err := fleet.New(fleet.Config{
		Nodes: p.Nodes, Shards: p.Shards, Replicas: p.Replicas, Seed: p.Seed,
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	cl := f.Client(nil)

	type ackedWrite struct {
		path string
		data []byte
		// prefix: only the first len(data) bytes are acked — the trailing
		// append never acked, so the file may or may not carry it.
		prefix bool
	}
	var acked []ackedWrite

	// do retries one request across coordinator ticks. The request is
	// built once and reused: fleet.Client pins a resolved append offset
	// into it, so every retry — including ours across rounds — rewrites
	// the same bytes at the same offset instead of appending again.
	do := func(req *wire.Request) bool {
		for round := 0; round < retryRounds; round++ {
			resp, err := cl.Do(req)
			if err == nil && resp.Status == wire.StatusOK {
				return true
			}
			// Unreachable primary, degraded replication, mid-promotion:
			// give the coordinator a tick and try again.
			f.Tick()
		}
		return false
	}

	// write lands key k in two acked steps: the head as an absolute
	// write at offset 0, the tail as an append (Offset < 0) — the op
	// shape whose retries must not duplicate bytes. A head that acked
	// without its tail is verified as a prefix.
	write := func(k int) {
		path := fmt.Sprintf("/w/k%03d", k)
		head := payload(p.Seed, k)
		tail := payload(sim.Mix(p.Seed, 0xA99E), k)
		if !do(&wire.Request{Op: wire.OpWrite, Shard: -1, Path: path, Data: head}) {
			res.Unacked++
			return
		}
		res.Acked++
		acked = append(acked, ackedWrite{path: path, data: head, prefix: true})
		idx := len(acked) - 1
		if !do(&wire.Request{Op: wire.OpWrite, Shard: -1, Offset: -1, Path: path, Data: tail}) {
			res.Unacked++
			return
		}
		res.Acked++
		full := append(append([]byte(nil), head...), tail...)
		acked[idx] = ackedWrite{path: path, data: full}
	}

	ticks := func(n int) {
		for i := 0; i < n; i++ {
			f.Tick()
		}
	}

	k := 0
	for ; k < p.PreWrites; k++ {
		write(k)
	}

	route0 := f.Table().Routes[0]
	healAfter := -1
	switch p.Kind {
	case KillPrimary:
		f.Kill(route0.Primary)
		ticks(4)
	case PartitionPrimary:
		f.Isolate(route0.Primary)
		ticks(4)
		// Heal mid-way through the post writes so the deposed primary's
		// fencing runs under live traffic.
		healAfter = p.PostWrites / 2
	case KillBackup:
		if len(route0.Backups) > 0 {
			f.Kill(route0.Backups[0])
			ticks(2)
		}
	case OSCrash:
		n := f.Node(route0.Primary)
		n.CrashNode()
		if err := n.WarmbootNode(); err != nil {
			res.Err = "warmboot: " + err.Error()
			return res
		}
		ticks(1)
	case PartitionPair:
		// Pairwise cuts: the primary loses its peers and the coordinator
		// but keeps its client links — the stale-read window.
		tr := f.Transport()
		for _, id := range f.NodeIDs() {
			if id != route0.Primary {
				tr.Cut(route0.Primary, id)
			}
		}
		tr.Cut(route0.Primary, fleet.CoordName)
		ticks(4)
		healAfter = p.PostWrites / 2
	}

	if p.Kind == PartitionPair {
		// The stale-read probe: rewrite an acked key on the partitioned
		// shard through the new primary (a fresh client routes straight
		// there), then read it from the old primary — still reachable by
		// clients, ignorant of its deposition. The read fence must refuse;
		// an OK carrying the old bytes is a stale read.
		probe := -1
		for i := range acked {
			if !acked[i].prefix && fleet.ShardOf(acked[i].path, p.Shards) == route0.Shard {
				probe = i
				break
			}
		}
		if probe >= 0 {
			rew := append([]byte(nil), acked[probe].data...)
			for i := range rew {
				rew[i] ^= 0x5A
			}
			fresh := f.Client(nil)
			rewACK := false
			for round := 0; round < retryRounds; round++ {
				resp, err := fresh.Do(&wire.Request{Op: wire.OpWrite, Shard: -1, Path: acked[probe].path, Data: rew})
				if err == nil && resp.Status == wire.StatusOK {
					rewACK = true
					break
				}
				f.Tick()
			}
			if rewACK {
				acked[probe].data = rew
				resp, err := f.Transport().Send(fleet.ClientName, route0.Primary,
					&wire.Request{Op: wire.OpRead, Shard: -1, Path: acked[probe].path})
				if err == nil && resp.Status == wire.StatusOK && string(resp.Data) != string(rew) {
					res.Stale++
				}
			}
		}
	}

	for j := 0; j < p.PostWrites; j++ {
		if j == healAfter {
			f.Rejoin(route0.Primary)
			ticks(2)
		}
		write(k)
		k++
	}

	// The durability gate: every acknowledged write reads back
	// byte-equal — exactly for fully acked keys, as a prefix for keys
	// whose trailing append never acked — across whatever the fault did
	// to the fleet.
	for _, aw := range acked {
		ok := false
		for round := 0; round < retryRounds; round++ {
			resp, err := cl.Do(&wire.Request{Op: wire.OpRead, Shard: -1, Path: aw.path})
			if err == nil && resp.Status == wire.StatusOK {
				if aw.prefix {
					ok = len(resp.Data) >= len(aw.data) && string(resp.Data[:len(aw.data)]) == string(aw.data)
				} else {
					ok = string(resp.Data) == string(aw.data)
				}
				if ok {
					break
				}
			}
			f.Tick()
		}
		if !ok {
			res.Lost++
		}
	}

	m := f.Metrics()
	res.Promotions = int(m.Promotions)
	res.Reconfigs = int(m.Reconfigs)
	res.Repairs = int(m.Repairs)
	res.Redirects = cl.Stats.Redirects
	res.Retries = cl.Stats.Retries
	return res
}

// Config parameterises the campaign.
type Config struct {
	Seed    uint64
	Runs    int // plans executed; kinds cycle by index
	Workers int // 0 = GOMAXPROCS
	// Progress, when set, receives one line per folded run.
	Progress func(string)

	// Kinds, when non-empty, restricts the campaign to these fault
	// kinds (plans cycle through the list by index). Empty means all
	// NumKinds, exactly as PlanFor derives them — existing reports are
	// unchanged.
	Kinds []FaultKind
	// Nodes/Shards/Replicas override the fleet topology when positive;
	// zero keeps PlanFor's defaults (3/2/2).
	Nodes    int
	Shards   int
	Replicas int
}

// planFor derives plan i under the config's kind set and topology
// overrides. With a zero-value override set it is PlanFor exactly.
func (cfg Config) planFor(i int) Plan {
	p := PlanFor(cfg.Seed, i)
	if len(cfg.Kinds) > 0 {
		p.Kind = cfg.Kinds[i%len(cfg.Kinds)]
	}
	if cfg.Nodes > 0 {
		p.Nodes = cfg.Nodes
	}
	if cfg.Shards > 0 {
		p.Shards = cfg.Shards
	}
	if cfg.Replicas > 0 {
		p.Replicas = cfg.Replicas
	}
	return p
}

// DefaultConfig covers all five fault kinds across a healthy sample of
// seed-derived plans — 55 runs is 11 per kind, comfortably past the
// acceptance bar of 50 while keeping the kind cycle exact.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, Runs: 55}
}

// KindCell aggregates one fault kind's runs.
type KindCell struct {
	Runs       int    `json:"runs"`
	Acked      int    `json:"acked"`
	Unacked    int    `json:"unacked"`
	Lost       int    `json:"lost"`
	Stale      int    `json:"stale"`
	Promotions int    `json:"promotions"`
	Reconfigs  int    `json:"reconfigs"`
	Repairs    int    `json:"repairs"`
	Redirects  uint64 `json:"redirects"`
	Retries    uint64 `json:"retries"`
	Errors     int    `json:"errors"`
	LastError  string `json:"last_error,omitempty"`
}

func (c *KindCell) fold(res RunResult) {
	c.Runs++
	if res.Err != "" {
		c.Errors++
		c.LastError = res.Err
		return
	}
	c.Acked += res.Acked
	c.Unacked += res.Unacked
	c.Lost += res.Lost
	c.Stale += res.Stale
	c.Promotions += res.Promotions
	c.Reconfigs += res.Reconfigs
	c.Repairs += res.Repairs
	c.Redirects += res.Redirects
	c.Retries += res.Retries
}

// Report is the campaign's aggregated outcome: one cell per fault kind
// (a fixed array, not a map — the fold and the render walk it in kind
// order, so the bytes cannot depend on scheduling).
type Report struct {
	Seed  uint64             `json:"seed"`
	Runs  int                `json:"runs"`
	Cells [NumKinds]KindCell `json:"cells"`
}

// TotalLost sums the Lost column — the number that must be zero.
func (r *Report) TotalLost() int {
	n := 0
	for i := range r.Cells {
		n += r.Cells[i].Lost
	}
	return n
}

// TotalStale sums the Stale column — also gated at zero: a deposed
// primary serving bytes that miss acked writes breaks the same promise
// as losing them.
func (r *Report) TotalStale() int {
	n := 0
	for i := range r.Cells {
		n += r.Cells[i].Stale
	}
	return n
}

// TotalErrors sums harness errors.
func (r *Report) TotalErrors() int {
	n := 0
	for i := range r.Cells {
		n += r.Cells[i].Errors
	}
	return n
}

// Table renders the campaign. Built purely from folded cells in kind
// order — byte-identical at any worker count.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %6s %7s %8s %6s %6s %6s %7s %8s %9s %8s\n",
		"Fault Kind", "runs", "acked", "unacked", "lost", "stale", "promo", "reconf", "repairs", "redirects", "retries")
	var tot KindCell
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(&b, "%-20s %6d %7d %8d %6d %6d %6d %7d %8d %9d %8d\n",
			FaultKind(i).String(), c.Runs, c.Acked, c.Unacked, c.Lost, c.Stale,
			c.Promotions, c.Reconfigs, c.Repairs, c.Redirects, c.Retries)
		tot.Runs += c.Runs
		tot.Acked += c.Acked
		tot.Unacked += c.Unacked
		tot.Lost += c.Lost
		tot.Stale += c.Stale
		tot.Promotions += c.Promotions
		tot.Reconfigs += c.Reconfigs
		tot.Repairs += c.Repairs
		tot.Redirects += c.Redirects
		tot.Retries += c.Retries
	}
	fmt.Fprintf(&b, "%-20s %6d %7d %8d %6d %6d %6d %7d %8d %9d %8d\n",
		"Total", tot.Runs, tot.Acked, tot.Unacked, tot.Lost, tot.Stale,
		tot.Promotions, tot.Reconfigs, tot.Repairs, tot.Redirects, tot.Retries)
	return b.String()
}

// Errors returns per-kind harness errors in kind order.
func (r *Report) Errors() []string {
	var out []string
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Errors > 0 {
			out = append(out, fmt.Sprintf("%v: %d errors, last: %s",
				FaultKind(i), c.Errors, c.LastError))
		}
	}
	return out
}

// Run executes cfg.Runs seed-derived fleet crash plans. Workers write
// disjoint result slots; the fold walks them in plan order after the
// barrier, so the report is byte-identical at any worker count.
func Run(cfg Config) (*Report, error) {
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("fleetcampaign: Runs must be positive")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]RunResult, cfg.Runs)
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				results[i] = RunOne(cfg.planFor(i))
			}
		}()
	}
	for i := 0; i < cfg.Runs; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()

	rep := &Report{Seed: cfg.Seed, Runs: cfg.Runs}
	for i := 0; i < cfg.Runs; i++ {
		res := results[i]
		rep.Cells[res.Plan.Kind].fold(res)
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("fleet %03d %v: acked=%d lost=%d stale=%d promo=%d",
				i, res.Plan.Kind, res.Acked, res.Lost, res.Stale, res.Promotions))
		}
	}
	return rep, nil
}
