// Command rioperf reproduces Table 2 of the Rio paper: the running time of
// cp+rm, Sdet, and Andrew under eight file-system configurations, plus the
// protection-overhead and code-patching measurements.
//
// Usage:
//
//	rioperf [-scale F] [-seed S] [-quiet] [-cpuprofile FILE]
//
// Times are simulated (a parameterised 1996-era cost model); the
// reproduction target is the paper's shape — who wins and by what factor —
// not the absolute DEC 3000/600 numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"rio"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	seed := flag.Uint64("seed", 1, "run seed (reproducible)")
	quiet := flag.Bool("quiet", false, "suppress per-row progress")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rioperf:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rioperf:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := rio.PerfOptions{Seed: *seed, Scale: *scale}
	if !*quiet {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	res, err := rio.RunPerfTable(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rioperf:", err)
		os.Exit(1)
	}

	fmt.Println("Table 2: Performance Comparison (simulated seconds)")
	fmt.Println()
	fmt.Print(res.Table())
	fmt.Println()

	sp := res.Speedups()
	show := func(name string, v [3]float64, paper string) {
		fmt.Printf("Rio speedup %-28s cp+rm %5.1fx  Sdet %5.1fx  Andrew %5.1fx   (paper: %s)\n",
			name, v[0], v[1], v[2], paper)
	}
	show("vs write-through-on-write:", sp.VsWriteThroughWrite, "4-22x band")
	show("vs write-through-on-close:", sp.VsWriteThroughClose, "4-22x band")
	show("vs default UFS:", sp.VsUFS, "2-14x band")
	show("vs delayed UFS (no-order):", sp.VsDelayed, "1-3x band")
	show("vs memory file system:", sp.VsMFS, "~1x")
	fmt.Println()

	w, p, err := rio.ProtectionOverhead(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rioperf:", err)
		os.Exit(1)
	}
	fmt.Printf("Protection overhead on cp+rm: %v -> %v (+%.1f%%; paper: ~0%%, 24s vs 25s)\n",
		w, p, 100*(float64(p)/float64(w)-1))

	tlb, patched, err := rio.CodePatchingOverhead(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rioperf:", err)
		os.Exit(1)
	}
	fmt.Printf("Code-patching ablation (copy stream): %v -> %v (+%.1f%%; paper: 20-50%%)\n",
		tlb, patched, 100*(float64(patched)/float64(tlb)-1))
}
