// Package crashtest implements the paper's reliability experiment (§3):
// crash a running system with injected faults, reboot, and measure how
// often file data is corrupted. It reproduces Table 1's three columns:
//
//	disk-based write-through — fsync after every write, cold reboot + fsck
//	Rio without protection   — no reliability writes, warm reboot
//	Rio with protection      — plus file-cache write protection
//
// Corruption is detected two ways, as in the paper: registry checksums
// catch direct corruption of any file-cache buffer, and the memTest oracle
// catches both direct and indirect corruption of its own files. Static
// duplicate files provide a final cross-check.
package crashtest

import (
	"bytes"
	"fmt"

	"rio/internal/disk"
	"rio/internal/fault"
	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/sim"
	"rio/internal/warmreboot"
	"rio/internal/workload"
)

// System selects a Table 1 column.
type System int

const (
	DiskWT System = iota
	RioNoProt
	RioProt
)

var systemNames = [...]string{"disk-based", "rio-noprot", "rio-prot"}

func (s System) String() string {
	if s >= 0 && int(s) < len(systemNames) {
		return systemNames[s]
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// Systems lists the three columns in Table 1 order.
var Systems = []System{DiskWT, RioNoProt, RioProt}

// RunConfig parameterises one crash run.
type RunConfig struct {
	Seed         uint64
	WarmupOps    int // ops before injection
	MaxOps       int // ops after injection before the run is discarded
	FaultCount   int // faults injected per run (paper: 20)
	MemTestBytes int // memTest file-set budget
	VMBudget     uint64

	// DiskFaults turns the run into a double-fault experiment: recovery
	// executes against a disk injecting transient, latent, and
	// misdirected storage faults (a deterministic per-run plan), and —
	// on the Rio systems — a second crash interrupts the warm reboot at
	// a seed-derived step, after which recovery restarts from the same
	// memory dump. The plan is detached before verification, so only
	// damage recovery failed to contain counts as corruption.
	DiskFaults bool
}

// Salts for the per-run derived randomness. Every stream derives purely
// from the run seed via sim.Mix — no shared PRNG is consumed — so the
// campaign report stays byte-identical at any worker count.
const (
	diskFaultSalt     = 0xD15CFA17
	recoveryCrashSalt = 0x2ECC4A57
	regNoiseSalt      = 0x4E6015E5
	coldBootSalt      = 0xC01DB007
	// recoveryCrashWindow bounds the injected second-crash step. Steps
	// past the protocol's end leave the recovery uninterrupted, so the
	// campaign samples both interrupted and clean recoveries.
	recoveryCrashWindow = 48
)

// DefaultRunConfig returns the standard parameters, scaled from the paper
// to simulator volumes.
func DefaultRunConfig(seed uint64) RunConfig {
	return RunConfig{
		Seed:         seed,
		WarmupOps:    30,
		MaxOps:       250,
		FaultCount:   fault.DefaultCount,
		MemTestBytes: 1 << 21, // 2 MB file set
		VMBudget:     400_000,
	}
}

// RunResult is the outcome of one crash run.
type RunResult struct {
	System System
	Fault  fault.Type
	Seed   uint64

	// Crashed is false when the faults never took the system down within
	// MaxOps; such runs are discarded, as in the paper (about half their
	// runs).
	Crashed     bool
	CrashKind   kernel.CrashKind
	CrashReason string
	OpsToCrash  int

	// Corrupted is true when any durable file data was wrong after
	// recovery.
	Corrupted   bool
	Corruptions []workload.Corruption
	// StaticCorrupted: the untouched duplicate files differed.
	StaticCorrupted bool
	// ChecksumDetected: the registry checksum mechanism flagged direct
	// corruption at warm reboot (Rio systems only).
	ChecksumDetected bool
	// ProtectionInvoked: the crash was Rio's protection trap halting an
	// illegal file-cache store.
	ProtectionInvoked bool

	// Recovery-path observability (meaningful when DiskFaults is on).
	// RecoveryInterrupted: a second crash hit mid-recovery and the warm
	// reboot was restarted from the same dump.
	RecoveryInterrupted bool
	// RecoveryAborted: recovery returned an error instead of a report —
	// the volume was left half-restored. The double-fault acceptance
	// criterion is that this never happens: every run must end
	// restored-or-quarantined.
	RecoveryAborted bool
	// Quarantined: dirty pages recovery could not restore (retries
	// exhausted); the loss is bounded and reported, not fatal.
	Quarantined int
	// Salvaged: orphaned dirty pages preserved under /lost+found.
	Salvaged int
	// VolumeLost: after the metadata restore, fsck could not certify
	// the volume or it would not mount; the machine never booted, so
	// the whole volume counts as corrupted but the recovery itself
	// completed its protocol.
	VolumeLost bool
}

const nStatic = 3

func staticPath(i int, copyB bool) string {
	c := "a"
	if copyB {
		c = "b"
	}
	return fmt.Sprintf("/static/%s%d", c, i)
}

func staticContent(i int) []byte {
	return kernel.FillBytes(3000+700*i, (0x57a71c+uint64(i))|1)
}

// buildMachine assembles the system under test.
func buildMachine(sys System, cfg RunConfig) (*machine.Machine, error) {
	var pol fs.Policy
	switch sys {
	case DiskWT:
		pol = fs.DefaultPolicy(fs.PolicyUFSWTWrite)
	case RioNoProt:
		pol = fs.DefaultPolicy(fs.PolicyRio)
		pol.Protect = false
	case RioProt:
		pol = fs.DefaultPolicy(fs.PolicyRio)
		pol.Protect = true
	}
	opt := machine.DefaultOptions(pol)
	opt.FastPath = false // faults act on interpreted kernel code
	opt.Checksums = true
	opt.Seed = cfg.Seed
	// Crash runs use a larger physical memory than the cache occupies, as
	// on the paper's machines, so a wild physical address usually misses
	// the file cache.
	opt.MemPages = 2048
	m, err := machine.New(opt, nil)
	if err != nil {
		return nil, err
	}
	m.Kernel.VM.Budget = cfg.VMBudget
	// Register noise: between kernel entries the register file has been
	// churned by unrelated kernel code, so stale registers rarely still
	// hold live file-cache pointers.
	noise := sim.NewRand(sim.Mix(cfg.Seed, regNoiseSalt))
	m.Kernel.VM.RegNoise = func() (uint64, bool) {
		if noise.Float64() < 0.85 {
			return noise.Uint64(), true
		}
		return 0, false
	}
	return m, nil
}

// setupStatic writes the untouched duplicate files.
func setupStatic(m *machine.Machine) error {
	if err := m.FS.Mkdir("/static"); err != nil {
		return err
	}
	for i := 0; i < nStatic; i++ {
		for _, b := range []bool{false, true} {
			f, err := m.FS.Create(staticPath(i, b))
			if err != nil {
				return err
			}
			if _, err := f.Write(staticContent(i)); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkStatic(m *machine.Machine) bool {
	read := func(p string) []byte {
		f, err := m.FS.Open(p)
		if err != nil {
			return nil
		}
		defer f.Close()
		st, err := m.FS.Stat(p)
		if err != nil || st.Size > 1<<20 {
			return nil // a corrupt inode size is corruption too
		}
		buf := make([]byte, st.Size)
		if _, err := f.ReadAt(buf, 0); err != nil {
			return nil
		}
		return buf
	}
	for i := 0; i < nStatic; i++ {
		want := staticContent(i)
		a := read(staticPath(i, false))
		b := read(staticPath(i, true))
		if !bytes.Equal(a, want) || !bytes.Equal(b, want) {
			return true // corrupted
		}
	}
	return false
}

// RunOne executes a single crash run: boot, warm up, inject, run to crash,
// recover, verify.
func RunOne(sys System, ft fault.Type, cfg RunConfig) (res RunResult, err error) {
	// Fault injection drives the simulator into states no normal workload
	// reaches; a simulator-level panic must surface as a harness error on
	// this one run, not kill a 2000-run campaign.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("crashtest: simulator panic (sys=%v fault=%v seed=%d): %v",
				sys, ft, cfg.Seed, r)
		}
	}()
	res = RunResult{System: sys, Fault: ft, Seed: cfg.Seed}
	root := sim.NewRand(cfg.Seed)
	faultRng := root.Fork()
	mtSeed := root.Uint64()

	m, err := buildMachine(sys, cfg)
	if err != nil {
		return res, err
	}
	if err := setupStatic(m); err != nil {
		return res, fmt.Errorf("crashtest: static setup: %w", err)
	}

	mt := workload.NewMemTest(mtSeed, cfg.MemTestBytes)
	mt.WriteThrough = sys == DiskWT

	for i := 0; i < cfg.WarmupOps; i++ {
		if err := mt.Step(m.FS); err != nil {
			return res, fmt.Errorf("crashtest: warmup step %d: %w", i, err)
		}
	}

	if err := fault.Inject(m, ft, cfg.FaultCount, faultRng); err != nil {
		return res, err
	}

	for i := 0; i < cfg.MaxOps; i++ {
		err := mt.Step(m.FS)
		if c := m.Crashed(); c != nil {
			res.Crashed = true
			res.CrashKind = c.Kind
			res.CrashReason = c.Reason
			res.OpsToCrash = i + 1
			res.ProtectionInvoked = c.Kind == kernel.CrashProtection
			break
		}
		if err != nil {
			// A file-system-level error without a kernel crash: the
			// system limps on, as real faulted kernels sometimes do.
			mt.InFlight = nil
			continue
		}
	}
	if !res.Crashed {
		return res, nil // discarded by the campaign
	}

	m.CrashFinish()

	// Double-fault mode: recovery runs against a faulty disk. The plan is
	// detached again before verification — latent damage recovery failed
	// to contain persists and is scored, but the oracle's own reads are
	// not re-faulted.
	if cfg.DiskFaults {
		plan := disk.DefaultFaultPlan(sim.Mix(cfg.Seed, diskFaultSalt))
		m.Disk.SetFaultPlan(&plan)
	}

	switch sys {
	case DiskWT:
		if _, err := warmreboot.Cold(m, sim.Mix(cfg.Seed, coldBootSalt)); err != nil {
			// An unrecoverable volume (e.g. torn superblock) is the
			// worst corruption outcome, not a harness error.
			m.Disk.SetFaultPlan(nil)
			res.Corrupted = true
			res.Corruptions = []workload.Corruption{{Path: "/", Detail: "volume unrecoverable: " + err.Error()}}
			return res, nil
		}
	default:
		dump := m.Mem.Dump()
		opts := warmreboot.DefaultOptions()
		if cfg.DiskFaults {
			// Second crash: interrupt the warm reboot at a seed-derived
			// step, then restart it from the same immutable dump.
			opts.CrashAtStep = int(sim.Mix(cfg.Seed, recoveryCrashSalt) % recoveryCrashWindow)
		}
		rep, err := warmreboot.FromDumpOpts(m, dump, opts)
		if err == warmreboot.ErrInterrupted {
			res.RecoveryInterrupted = true
			rep, err = warmreboot.FromDump(m, dump)
		}
		if err != nil {
			m.Disk.SetFaultPlan(nil)
			res.RecoveryAborted = true
			res.Corrupted = true
			res.Corruptions = []workload.Corruption{{Path: "/", Detail: "warm reboot failed: " + err.Error()}}
			return res, nil
		}
		res.ChecksumDetected = rep.ChecksumMismatches > 0
		res.Quarantined = rep.MetaFailed + rep.DataFailed
		res.Salvaged = rep.Salvaged
		if rep.VolumeLost {
			// The recovery protocol completed, but the volume failed
			// fsck or would not mount and the machine never booted:
			// there is no tree to verify — the whole volume is the
			// corruption.
			m.Disk.SetFaultPlan(nil)
			res.VolumeLost = true
			res.Corrupted = true
			res.Corruptions = []workload.Corruption{{Path: "/", Detail: "volume lost: " + rep.Fsck.String()}}
			return res, nil
		}
	}
	m.Disk.SetFaultPlan(nil)

	res.Corruptions = mt.Verify(m.FS)
	res.StaticCorrupted = checkStatic(m)
	res.Corrupted = len(res.Corruptions) > 0 || res.StaticCorrupted
	return res, nil
}
