package rio

import (
	"time"

	"rio/internal/perf"
	"rio/internal/sim"
)

// PerfOptions configures a Table 2 reproduction.
type PerfOptions struct {
	// Seed reproduces a run exactly. Default 1.
	Seed uint64
	// Scale multiplies the workload sizes (1.0 = defaults: 4 MB cp+rm
	// tree, 5x220-op Sdet, 600 KB Andrew tree).
	Scale float64
	// Progress, if non-nil, receives one line per completed row.
	Progress func(string)
}

// PerfRow is one measured Table 2 row.
type PerfRow struct {
	Label         string
	DataPermanent string
	CpRm          time.Duration // copy + remove
	CpRmCopy      time.Duration
	CpRmRemove    time.Duration
	Sdet          time.Duration
	Andrew        time.Duration
}

// PerfResult is a completed Table 2 reproduction.
type PerfResult struct {
	Rows []PerfRow
	rows []perf.Row
}

// Table renders the result in the paper's Table 2 layout.
func (r *PerfResult) Table() string { return perf.Format(r.rows) }

// Speedups summarises the paper's headline comparisons: how many times
// faster Rio (with protection) runs than each baseline, per workload
// (cp+rm, Sdet, Andrew).
type Speedups struct {
	VsWriteThroughWrite [3]float64 // paper: 4-22x
	VsWriteThroughClose [3]float64
	VsUFS               [3]float64 // paper: 2-14x
	VsDelayed           [3]float64 // paper: 1-3x
	VsMFS               [3]float64 // paper: ~1x
}

// Speedups computes the headline ratios.
func (r *PerfResult) Speedups() Speedups {
	ratios := perf.ComputeRatios(r.rows)
	return Speedups{
		VsWriteThroughWrite: ratios.VsWriteThroughWrite,
		VsWriteThroughClose: ratios.VsWriteThroughClose,
		VsUFS:               ratios.VsUFS,
		VsDelayed:           ratios.VsDelayed,
		VsMFS:               ratios.VsMFS,
	}
}

func perfConfig(opts PerfOptions) perf.Config {
	cfg := perf.DefaultConfig()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Scale > 0 && opts.Scale != 1 {
		cfg.CpRm.TreeBytes = int(float64(cfg.CpRm.TreeBytes) * opts.Scale)
		cfg.Sdet.OpsPerScript = int(float64(cfg.Sdet.OpsPerScript) * opts.Scale)
		cfg.Andrew.TreeBytes = int(float64(cfg.Andrew.TreeBytes) * opts.Scale)
	}
	cfg.Progress = opts.Progress
	return cfg
}

// RunPerfTable reproduces Table 2: the three workloads under all eight
// file-system configurations.
func RunPerfTable(opts PerfOptions) (*PerfResult, error) {
	cfg := perfConfig(opts)
	rows, err := cfg.RunTable2()
	if err != nil {
		return nil, err
	}
	out := &PerfResult{rows: rows}
	for _, r := range rows {
		out.Rows = append(out.Rows, PerfRow{
			Label:         r.Spec.Label,
			DataPermanent: r.Spec.Permanent,
			CpRm:          time.Duration(r.CpRm()),
			CpRmCopy:      time.Duration(r.CpRmCp),
			CpRmRemove:    time.Duration(r.CpRmRm),
			Sdet:          time.Duration(r.Sdet),
			Andrew:        time.Duration(r.Andrew),
		})
	}
	return out, nil
}

// ProtectionOverhead measures the cost of Rio's memory protection on the
// cp+rm workload (the paper: essentially zero — 25s vs 24s).
func ProtectionOverhead(opts PerfOptions) (without, with time.Duration, err error) {
	cfg := perfConfig(opts)
	a, b, err := cfg.ProtectionOverhead()
	return time.Duration(a), time.Duration(b), err
}

// CodePatchingOverhead measures the software-check protection fallback
// against the TLB scheme on a copy-intensive stream (the paper: 20-50%
// slower).
func CodePatchingOverhead(opts PerfOptions) (tlb, patched time.Duration, err error) {
	cfg := perfConfig(opts)
	a, b, err := cfg.CodePatchingOverhead()
	return time.Duration(a), time.Duration(b), err
}

var _ = sim.Second
