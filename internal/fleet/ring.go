package fleet

import (
	"sort"

	"rio/internal/sim"
)

// Placement is rendezvous (highest-random-weight) hashing: each
// (shard, node) pair gets a weight that is a pure function of the fleet
// seed, and a shard's replica set is the R highest-weighted live nodes.
// Rendezvous beats a token ring here because removing one node moves
// only the shards that node held — every other placement is untouched —
// and because it needs no virtual-node bookkeeping to balance. Ties
// break toward the lexically lowest node id so the placement is a total
// order, never an iteration-order accident.

// ShardOf routes a path to a global shard: the same stable FNV-1a 64
// the single-node server uses, reduced mod the shard count. Fleet and
// server must agree — campaign seeds and redirect tests key on routing
// never drifting between the two layers.
func ShardOf(path string, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// Place returns shard's replica set drawn from nodes: the r nodes with
// the highest rendezvous weight, best first (the first entry is the
// natural primary). nodes may arrive in any order; the result is a pure
// function of (seed, shard, set-of-nodes, r).
func Place(seed uint64, nodes []string, shard, r int) []string {
	if r > len(nodes) {
		r = len(nodes)
	}
	type cand struct {
		node   string
		weight uint64
	}
	cands := make([]cand, 0, len(nodes))
	for _, n := range nodes {
		cands = append(cands, cand{n, sim.Mix(seed, uint64(shard), strHash(n))})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].weight != cands[j].weight {
			return cands[i].weight > cands[j].weight
		}
		return cands[i].node < cands[j].node
	})
	out := make([]string, r)
	for i := 0; i < r; i++ {
		out[i] = cands[i].node
	}
	return out
}

// strHash folds a node id into the weight mix (FNV-1a 64).
func strHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
