package rio

import (
	iofs "io/fs"

	"rio/internal/fs"
)

// File is an open file handle on the simulated file system.
type File struct {
	f   *fs.File
	sys *System
}

// Create makes a new file, failing if the path exists.
func (s *System) Create(path string) (*File, error) {
	f, err := s.m.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return &File{f: f, sys: s}, nil
}

// Open opens an existing file.
func (s *System) Open(path string) (*File, error) {
	f, err := s.m.FS.Open(path)
	if err != nil {
		return nil, err
	}
	return &File{f: f, sys: s}, nil
}

// Lookup resolves a path in one directory walk and returns its inode
// number, size, and directory bit without allocating a handle. Paired
// with ReadInoAt it forms the server's zero-copy read path.
func (s *System) Lookup(path string) (ino uint32, size int64, isDir bool, err error) {
	return s.m.FS.Lookup(path)
}

// ReadInoAt reads up to len(p) bytes at off from an inode returned by
// Lookup, copying cache frames directly into p (one copy, no staging
// bounce, no handle).
func (s *System) ReadInoAt(ino uint32, p []byte, off int64) (int, error) {
	return s.m.FS.ReadInoAt(ino, p, off)
}

// WriteInoAt writes p at off to an inode returned by Lookup, without
// allocating a handle — the serving layer's write analogue of
// ReadInoAt. Policy write-back behaves as a freshly opened handle
// would.
func (s *System) WriteInoAt(ino uint32, p []byte, off int64) (int, error) {
	return s.m.FS.WriteInoAt(ino, p, off)
}

// Write appends at the file position.
func (f *File) Write(p []byte) (int, error) { return f.f.Write(p) }

// WriteAt writes at an absolute offset.
func (f *File) WriteAt(p []byte, off int64) (int, error) { return f.f.WriteAt(p, off) }

// Read reads from the file position.
func (f *File) Read(p []byte) (int, error) { return f.f.Read(p) }

// ReadAt reads from an absolute offset.
func (f *File) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

// Size returns the file's current size.
func (f *File) Size() (int64, error) { return f.f.Size() }

// Sync makes the file durable. Under Rio this returns immediately: the
// write already was durable.
func (f *File) Sync() error { return f.sys.m.FS.Fsync(f.f) }

// Close closes the handle (under write-through-on-close policies this
// flushes).
func (f *File) Close() error { return f.f.Close() }

// WriteFile creates (or replaces) path with data.
func (s *System) WriteFile(path string, data []byte) error {
	if _, err := s.m.FS.Stat(path); err == nil {
		if err := s.m.FS.Unlink(path); err != nil {
			return err
		}
	}
	f, err := s.m.FS.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile returns the full contents of path.
func (s *System) ReadFile(path string) ([]byte, error) {
	st, err := s.m.FS.Stat(path)
	if err != nil {
		return nil, err
	}
	f, err := s.m.FS.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, st.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// Mkdir creates a directory.
func (s *System) Mkdir(path string) error { return s.m.FS.Mkdir(path) }

// Remove unlinks a file or removes an empty directory.
func (s *System) Remove(path string) error {
	st, err := s.m.FS.Stat(path)
	if err != nil {
		return err
	}
	if st.IsDir {
		return s.m.FS.Rmdir(path)
	}
	return s.m.FS.Unlink(path)
}

// Rename moves a file, replacing any regular file at the destination.
func (s *System) Rename(oldPath, newPath string) error {
	return s.m.FS.Rename(oldPath, newPath)
}

// DirEntry describes one directory entry.
type DirEntry struct {
	Name      string
	IsDir     bool
	IsSymlink bool
	Size      int64
}

// ReadDir lists a directory.
func (s *System) ReadDir(path string) ([]DirEntry, error) {
	ents, err := s.m.FS.ReadDir(path)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, len(ents))
	for i, e := range ents {
		out[i] = DirEntry{Name: e.Name, IsDir: e.IsDir, IsSymlink: e.IsSymlink, Size: e.Size}
	}
	return out, nil
}

// Stat describes a path, following symbolic links.
func (s *System) Stat(path string) (DirEntry, error) {
	st, err := s.m.FS.Stat(path)
	if err != nil {
		return DirEntry{}, err
	}
	return DirEntry{Name: st.Name, IsDir: st.IsDir, IsSymlink: st.IsSymlink, Size: st.Size}, nil
}

// Lstat describes a path without following a final symbolic link.
func (s *System) Lstat(path string) (DirEntry, error) {
	st, err := s.m.FS.Lstat(path)
	if err != nil {
		return DirEntry{}, err
	}
	return DirEntry{Name: st.Name, IsDir: st.IsDir, IsSymlink: st.IsSymlink, Size: st.Size}, nil
}

// Symlink creates a symbolic link at linkPath pointing at target.
func (s *System) Symlink(target, linkPath string) error {
	return s.m.FS.Symlink(target, linkPath)
}

// Readlink returns a symbolic link's target.
func (s *System) Readlink(path string) (string, error) {
	return s.m.FS.Readlink(path)
}

// Sync schedules all dirty buffers for write-back; a no-op under Rio and
// MFS.
func (s *System) Sync() { s.m.FS.Sync() }

// IsNotExist reports whether err means the path does not exist, in the
// manner of os.IsNotExist.
func IsNotExist(err error) bool {
	return err == fs.ErrNotFound || err == iofs.ErrNotExist
}
